#include "safedm/common/state.hpp"

#include <cstdio>
#include <cstring>

namespace safedm {
namespace {

// 8-byte stream magic; last byte is the container format version.
constexpr u8 kMagic[8] = {'S', 'A', 'F', 'E', 'D', 'M', 'S', 1};
constexpr std::size_t kSectionHeaderBytes = 4 + 4 + 8;  // tag + version + length

std::string printable_tag(const u8* p) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>(p[i]);
    out.push_back((c >= 0x20 && c < 0x7F) ? c : '?');
  }
  return out;
}

}  // namespace

// assign() instead of insert(): GCC 12's -Wstringop-overflow false-fires on
// range-insert into a fresh empty vector (PR 105329), and this TU builds
// with -Werror.
StateWriter::StateWriter() { buf_.assign(kMagic, kMagic + sizeof kMagic); }

void StateWriter::put_u16(u16 v) {
  put_u8(static_cast<u8>(v));
  put_u8(static_cast<u8>(v >> 8));
}

// Scalars stage little-endian bytes locally and append with one insert:
// snapshots are a few hundred KB of mostly u64s, and a per-byte push_back
// (capacity check each) is measurable at checkpoint-campaign rates.
void StateWriter::put_u32(u32 v) {
  u8 le[4];
  for (int i = 0; i < 4; ++i) le[i] = static_cast<u8>(v >> (8 * i));
  buf_.insert(buf_.end(), le, le + 4);
}

void StateWriter::put_u64(u64 v) {
  u8 le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<u8>(v >> (8 * i));
  buf_.insert(buf_.end(), le, le + 8);
}

void StateWriter::put_bytes(const void* data, std::size_t len) {
  const u8* p = static_cast<const u8*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

void StateWriter::put_string(std::string_view s) {
  put_u64(s.size());
  put_bytes(s.data(), s.size());
}

void StateWriter::begin_section(std::string_view tag, u32 version) {
  if (tag.size() != 4) throw StateError("section tag must be 4 characters: '" + std::string(tag) + "'");
  put_bytes(tag.data(), 4);
  put_u32(version);
  open_.push_back(buf_.size());
  put_u64(0);  // length, patched by end_section
}

void StateWriter::end_section() {
  if (open_.empty()) throw StateError("end_section with no open section");
  const std::size_t at = open_.back();
  open_.pop_back();
  const u64 len = buf_.size() - (at + 8);
  for (int i = 0; i < 8; ++i) buf_[at + i] = static_cast<u8>(len >> (8 * i));
}

std::vector<u8> StateWriter::take() {
  if (!open_.empty()) throw StateError("take() with unclosed section");
  return std::move(buf_);
}

StateReader::StateReader(std::span<const u8> data) : data_(data) {
  if (data_.size() < sizeof kMagic || std::memcmp(data_.data(), kMagic, sizeof kMagic) != 0)
    throw StateError("bad state stream magic (not a SafeDM snapshot, or wrong format version)");
  pos_ = sizeof kMagic;
}

void StateReader::need(std::size_t n) const {
  const std::size_t bound = ends_.empty() ? data_.size() : ends_.back();
  if (pos_ + n > bound) throw StateError("truncated state stream");
}

u8 StateReader::get_u8() {
  need(1);
  return data_[pos_++];
}

u16 StateReader::get_u16() {
  need(2);
  u16 v = static_cast<u16>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

u32 StateReader::get_u32() {
  need(4);
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

u64 StateReader::get_u64() {
  need(8);
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

bool StateReader::get_bool() {
  const u8 v = get_u8();
  if (v > 1) throw StateError("corrupt state stream: bool out of range");
  return v != 0;
}

void StateReader::get_bytes(void* out, std::size_t len) {
  need(len);
  std::memcpy(out, data_.data() + pos_, len);
  pos_ += len;
}

std::string StateReader::get_string() {
  const u64 len = get_u64();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

u32 StateReader::begin_section(std::string_view tag) {
  need(kSectionHeaderBytes);
  if (std::memcmp(data_.data() + pos_, tag.data(), 4) != 0)
    throw StateError("state section mismatch: expected '" + std::string(tag) + "', found '" +
                     printable_tag(data_.data() + pos_) + "'");
  pos_ += 4;
  const u32 version = get_u32();
  const u64 len = get_u64();
  const std::size_t bound = ends_.empty() ? data_.size() : ends_.back();
  if (len > bound - pos_) throw StateError("truncated state stream in section '" + std::string(tag) + "'");
  ends_.push_back(pos_ + len);
  return version;
}

void StateReader::begin_section(std::string_view tag, u32 expect_version) {
  const u32 got = begin_section(tag);
  if (got != expect_version) {
    ends_.pop_back();
    throw StateError("state section '" + std::string(tag) + "' version " + std::to_string(got) +
                     " unsupported (expected " + std::to_string(expect_version) + ")");
  }
}

void StateReader::end_section() {
  if (ends_.empty()) throw StateError("end_section with no open section");
  pos_ = ends_.back();  // skip unread payload (forward compat across sections)
  ends_.pop_back();
}

void Snapshot::to_file(const std::string& path) const { write_state_file(path, bytes); }

Snapshot Snapshot::from_file(const std::string& path) { return Snapshot{read_state_file(path)}; }

void write_state_file(const std::string& path, std::span<const u8> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw StateError("cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = written == bytes.size() && std::fclose(f) == 0;
  if (!ok) throw StateError("short write to '" + path + "'");
}

std::vector<u8> read_state_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw StateError("cannot open '" + path + "' for reading");
  std::vector<u8> bytes;
  u8 chunk[4096];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) bytes.insert(bytes.end(), chunk, chunk + n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw StateError("read error on '" + path + "'");
  return bytes;
}

}  // namespace safedm
