#include "safedm/common/histogram.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm {

Histogram::Histogram(std::vector<u64> upper_bounds) : bounds_(std::move(upper_bounds)) {
  SAFEDM_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bin bound");
  SAFEDM_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                       std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
                   "histogram bounds must be strictly increasing");
  counts_.assign(bounds_.size() + 1, 0);
}

Histogram Histogram::equal_width(u64 width, std::size_t count) {
  SAFEDM_CHECK(width > 0 && count > 0);
  std::vector<u64> bounds;
  bounds.reserve(count);
  for (std::size_t i = 1; i <= count; ++i) bounds.push_back(width * i);
  return Histogram(std::move(bounds));
}

Histogram Histogram::exponential(std::size_t count) {
  SAFEDM_CHECK(count > 0 && count < 64);
  std::vector<u64> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) bounds.push_back(u64{1} << i);
  return Histogram(std::move(bounds));
}

namespace {

// The hardware History module's counters saturate rather than wrap; model
// that here so a long campaign can never silently fold a huge count back
// to a small one.
u64 saturating_add(u64 a, u64 b) {
  u64 r;
  return __builtin_add_overflow(a, b, &r) ? std::numeric_limits<u64>::max() : r;
}

u64 saturating_mul(u64 a, u64 b) {
  u64 r;
  return __builtin_mul_overflow(a, b, &r) ? std::numeric_limits<u64>::max() : r;
}

}  // namespace

void Histogram::add(u64 sample, u64 weight) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const std::size_t bin = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bin] = saturating_add(counts_[bin], weight);
  total_samples_ = saturating_add(total_samples_, 1);
  total_weight_ = saturating_add(total_weight_, weight);
  sample_sum_ = saturating_add(sample_sum_, saturating_mul(sample, weight));
  max_sample_ = std::max(max_sample_, sample);
}

void Histogram::merge(const Histogram& other) {
  SAFEDM_CHECK_MSG(bounds_ == other.bounds_,
                   "histogram merge requires identical bin bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] = saturating_add(counts_[i], other.counts_[i]);
  total_samples_ = saturating_add(total_samples_, other.total_samples_);
  total_weight_ = saturating_add(total_weight_, other.total_weight_);
  sample_sum_ = saturating_add(sample_sum_, other.sample_sum_);
  max_sample_ = std::max(max_sample_, other.max_sample_);
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_samples_ = 0;
  total_weight_ = 0;
  sample_sum_ = 0;
  max_sample_ = 0;
}

u64 Histogram::bin_upper(std::size_t bin) const {
  SAFEDM_CHECK(bin < counts_.size());
  if (bin == bounds_.size()) return std::numeric_limits<u64>::max();
  return bounds_[bin];
}

void Histogram::save_state(StateWriter& w) const {
  w.begin_section("HIST", 1);
  w.put_u64(bounds_.size());
  for (u64 b : bounds_) w.put_u64(b);
  for (u64 c : counts_) w.put_u64(c);
  w.put_u64(total_samples_);
  w.put_u64(total_weight_);
  w.put_u64(sample_sum_);
  w.put_u64(max_sample_);
  w.end_section();
}

void Histogram::restore_state(StateReader& r) {
  r.begin_section("HIST", 1);
  const u64 n = r.get_u64();
  if (n != bounds_.size()) throw StateError("histogram bin-count mismatch");
  for (u64 b : bounds_)
    if (r.get_u64() != b) throw StateError("histogram bin-bound mismatch");
  for (u64& c : counts_) c = r.get_u64();
  total_samples_ = r.get_u64();
  total_weight_ = r.get_u64();
  sample_sum_ = r.get_u64();
  max_sample_ = r.get_u64();
  r.end_section();
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  u64 lower = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      lower = (i < bounds_.size()) ? bounds_[i] : lower;
      continue;
    }
    if (i == bounds_.size()) {
      os << "  (" << lower << ", inf)";
    } else {
      os << "  (" << lower << ", " << bounds_[i] << "]";
      lower = bounds_[i];
    }
    os << " -> " << counts_[i] << '\n';
  }
  os << "  samples=" << total_samples_ << " max=" << max_sample_ << '\n';
  return os.str();
}

}  // namespace safedm
