// Configurable-bin histogram, modelling the SafeDM History module's
// result-gathering storage (paper Section IV-B4: "stores the results in a
// histogram fashion, where the bin sizes can be configured").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "safedm/common/bits.hpp"

namespace safedm {

class StateReader;
class StateWriter;

/// Histogram over u64 samples with caller-defined bin upper bounds.
///
/// Bin i counts samples x with bound[i-1] < x <= bound[i]; samples above
/// the last bound land in a final overflow bin, mirroring a hardware
/// histogram with a saturating top bin.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<u64> upper_bounds);

  /// Equal-width bins: [1..width], (width..2*width], ... `count` bins.
  static Histogram equal_width(u64 width, std::size_t count);

  /// Power-of-two bins: [1], (1,2], (2,4], ... up to 2^(count-1).
  static Histogram exponential(std::size_t count);

  /// Record a sample. Bin counts, total weight, and the sample*weight sum
  /// all saturate at UINT64_MAX instead of wrapping (hardware counters
  /// stick at their ceiling; a wrapped count would silently look small).
  void add(u64 sample, u64 weight = 1);
  void clear();

  /// Fold another histogram with identical binning into this one. All
  /// counters use the same saturating arithmetic as `add`, so folding
  /// partial histograms is associative and commutative — any grouping or
  /// order of partials yields the same bytes as adding every sample to a
  /// single histogram, including when a bin has already saturated. (A
  /// wrapping fold would instead fold a saturated partial back to a small
  /// count.) The sharded campaign merge relies on this property for its
  /// byte-identical-report contract.
  void merge(const Histogram& other);

  std::size_t bin_count() const { return counts_.size(); }
  u64 bin_value(std::size_t bin) const { return counts_.at(bin); }
  /// Upper bound of bin (inclusive); the overflow bin returns UINT64_MAX.
  u64 bin_upper(std::size_t bin) const;

  u64 total_samples() const { return total_samples_; }
  u64 total_weight() const { return total_weight_; }
  /// Sum of sample*weight — e.g. total cycles across all recorded episodes.
  u64 sample_sum() const { return sample_sum_; }
  u64 max_sample() const { return max_sample_; }

  /// Multi-line human-readable rendering (used by example apps).
  std::string to_string() const;

  /// Snapshot counts + running totals. The bin bounds are written as a
  /// fingerprint and validated on restore (binning is configuration, not
  /// state); a mismatch throws StateError.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  std::vector<u64> bounds_;  // strictly increasing upper bounds
  std::vector<u64> counts_;  // bounds_.size() + 1 entries (last = overflow)
  u64 total_samples_ = 0;
  u64 total_weight_ = 0;
  u64 sample_sum_ = 0;
  u64 max_sample_ = 0;
};

}  // namespace safedm
