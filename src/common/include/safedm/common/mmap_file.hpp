// Read-only file-backed memory mapping.
//
// The sharded campaign fleet shares reference-run warmup (the serialized
// checkpoint train from `MpSoc::snapshot()`-derived rig state) across
// shard processes through files: one shard writes the snapshot once
// (atomically, via rename), every other shard maps it and deserializes
// straight out of the page cache instead of re-simulating the reference
// run. A StateReader works directly over `bytes()` — no copy of the
// (potentially multi-MB) checkpoint payload into process-private memory.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "safedm/common/bits.hpp"

namespace safedm {

/// RAII read-only mmap of a whole file. Move-only; unmaps on destruction.
/// `open` throws StateError when the file cannot be opened or mapped.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  static MappedFile open(const std::string& path);

  /// The mapped contents; empty for an empty file.
  std::span<const u8> bytes() const { return {data_, size_}; }

 private:
  const u8* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace safedm
