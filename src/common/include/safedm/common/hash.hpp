// Hash primitives used by the compressed-signature ablation (A2) and tests.
//
// The hardware SafeDM compares raw FIFO contents; a cheaper variant hashes
// each signature into a small word at the cost of a collision probability
// (a potential false negative). CRC32 models a realistic hardware
// compactor; FNV-1a is used for software-side containers.
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "safedm/common/bits.hpp"

namespace safedm {

/// FNV-1a over a byte span (software hashing, containers, tests).
constexpr u64 fnv1a(std::span<const u8> data, u64 seed = 0xCBF29CE484222325ULL) noexcept {
  u64 h = seed;
  for (u8 b : data) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Incremental FNV-1a over 64-bit words; convenient for streaming FIFO
/// contents without materializing a byte buffer.
class Fnv1a64 {
 public:
  void add(u64 word) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (word >> (8 * i)) & 0xFF;
      h_ *= 0x100000001B3ULL;
    }
  }
  void add_bit(bool b) noexcept {
    h_ ^= b ? 0x9Eu : 0x3Cu;
    h_ *= 0x100000001B3ULL;
  }
  u64 value() const noexcept { return h_; }

 private:
  u64 h_ = 0xCBF29CE484222325ULL;
};

/// CRC-32 (IEEE 802.3, reflected) — the hardware-style signature compactor.
/// Table-driven (byte-at-a-time); identical values to the bitwise form.
class Crc32 {
 public:
  void add(u64 word) noexcept {
    for (int i = 0; i < 8; ++i) add_byte(static_cast<u8>(word >> (8 * i)));
  }
  void add32(u32 word) noexcept {
    for (int i = 0; i < 4; ++i) add_byte(static_cast<u8>(word >> (8 * i)));
  }
  void add_byte(u8 byte) noexcept { crc_ = (crc_ >> 8) ^ kTable[(crc_ ^ byte) & 0xFFu]; }
  u32 value() const noexcept { return ~crc_; }

 private:
  static constexpr std::array<u32, 256> kTable = [] {
    std::array<u32, 256> table{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1u)));
      table[i] = c;
    }
    return table;
  }();
  u32 crc_ = 0xFFFFFFFFu;
};

}  // namespace safedm
