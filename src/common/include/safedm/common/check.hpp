// Runtime invariant checks.
//
// The simulator is a model of hardware whose invariants must hold on every
// cycle; a violated invariant is a modelling bug, so we fail fast with a
// descriptive exception rather than limping on with corrupt state.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace safedm {

/// Thrown when a modelling invariant is violated.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace safedm

/// Always-on invariant check (simulation correctness matters more than the
/// last few percent of speed).
#define SAFEDM_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr)) ::safedm::detail::check_fail(#expr, __FILE__, __LINE__, {}); \
  } while (false)

#define SAFEDM_CHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::safedm::detail::check_fail(#expr, __FILE__, __LINE__, os_.str());  \
    }                                                                      \
  } while (false)
