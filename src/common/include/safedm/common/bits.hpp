// Bit-manipulation helpers shared across the simulator.
//
// All helpers are constexpr and operate on explicit-width unsigned types so
// that instruction-encoding code reads like the ISA manual's field tables.
#pragma once

#include <cstdint>
#include <type_traits>

namespace safedm {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Extract bits [hi:lo] (inclusive, hi >= lo) of `value`, right-aligned.
constexpr u64 bits(u64 value, unsigned hi, unsigned lo) noexcept {
  const unsigned width = hi - lo + 1;
  if (width >= 64) return value >> lo;
  return (value >> lo) & ((u64{1} << width) - 1);
}

/// Extract a single bit.
constexpr u64 bit(u64 value, unsigned pos) noexcept { return (value >> pos) & 1; }

/// Sign-extend the low `width` bits of `value` to 64 bits.
constexpr i64 sign_extend(u64 value, unsigned width) noexcept {
  if (width == 0 || width >= 64) return static_cast<i64>(value);
  const u64 mask = (u64{1} << width) - 1;
  const u64 sign = u64{1} << (width - 1);
  const u64 v = value & mask;
  return static_cast<i64>((v ^ sign) - sign);
}

/// Zero-extend (mask) the low `width` bits.
constexpr u64 zero_extend(u64 value, unsigned width) noexcept {
  if (width >= 64) return value;
  return value & ((u64{1} << width) - 1);
}

/// True if `value` is a power of two (and nonzero).
constexpr bool is_pow2(u64 value) noexcept { return value != 0 && (value & (value - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_exact(u64 value) noexcept {
  unsigned n = 0;
  while (value > 1) {
    value >>= 1;
    ++n;
  }
  return n;
}

/// Align `value` down to a multiple of `align` (power of two).
constexpr u64 align_down(u64 value, u64 align) noexcept { return value & ~(align - 1); }

/// Align `value` up to a multiple of `align` (power of two).
constexpr u64 align_up(u64 value, u64 align) noexcept {
  return (value + align - 1) & ~(align - 1);
}

static_assert(bits(0xF0u, 7, 4) == 0xF);
static_assert(sign_extend(0x800, 12) == -2048);
static_assert(sign_extend(0x7FF, 12) == 2047);
static_assert(align_up(13, 8) == 16);

}  // namespace safedm
