// Minimal leveled logger for simulator diagnostics.
//
// Off by default so that benchmark loops pay only a branch; the trace level
// is what replaces the paper's Modelsim cycle-by-cycle inspection.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace safedm {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Redirect output (tests); nullptr restores the default std::clog sink.
  void set_sink(std::ostream* sink);

  /// Emit one formatted line. Lines from concurrent bench workers are
  /// serialized under mutex_ so they never interleave mid-line.
  void write(LogLevel level, const std::string& msg);

 private:
  // level_ is deliberately unguarded: it is set once before threads spawn
  // and then only read (a stale read merely drops/keeps one message).
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
  std::ostream* sink_ = &std::clog;  // lint: guarded-by(mutex_)
};

}  // namespace safedm

#define SAFEDM_LOG(level, stream_expr)                                        \
  do {                                                                        \
    if (::safedm::Logger::instance().enabled(level)) {                        \
      std::ostringstream os_;                                                 \
      os_ << stream_expr;                                                     \
      ::safedm::Logger::instance().write(level, os_.str());                   \
    }                                                                         \
  } while (false)

#define SAFEDM_TRACE(s) SAFEDM_LOG(::safedm::LogLevel::kTrace, s)
#define SAFEDM_DEBUG(s) SAFEDM_LOG(::safedm::LogLevel::kDebug, s)
#define SAFEDM_INFO(s) SAFEDM_LOG(::safedm::LogLevel::kInfo, s)
#define SAFEDM_WARN(s) SAFEDM_LOG(::safedm::LogLevel::kWarn, s)
