// Abstract byte-addressed memory port.
//
// Shared by the golden-model ISS (functional accesses) and the memory
// hierarchy (backing storage), so architectural equivalence tests can run
// both against the same image.
#pragma once

#include "safedm/common/bits.hpp"

namespace safedm {

class MemoryPort {
 public:
  virtual ~MemoryPort() = default;

  /// Read `size` bytes (1, 2, 4 or 8) at `addr`, little-endian,
  /// zero-extended into the return value.
  virtual u64 load(u64 addr, unsigned size) = 0;

  /// Write the low `size` bytes of `value` at `addr`, little-endian.
  virtual void store(u64 addr, u64 value, unsigned size) = 0;
};

}  // namespace safedm
