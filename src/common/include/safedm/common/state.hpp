// Versioned binary state serialization for snapshot/restore.
//
// Every stateful component implements
//
//   void save_state(StateWriter& w) const;
//   void restore_state(StateReader& r);
//
// writing one tagged section (4-char fourcc + u32 version + u64 payload
// length). Sections nest, so a composite (Core, SafeDm, MpSoc) wraps its
// children's sections inside its own. All scalars are written as
// little-endian byte sequences regardless of host endianness, so a
// snapshot file is portable across machines.
//
// Contract (DESIGN.md §5b): restore must leave the component *forward
// bit-identical* to the instance that was saved — every subsequent
// observable (tap frames, counters, bus traffic, results) matches the
// uninterrupted run. Derived caches (CRC memos, comparator masks) may be
// rebuilt instead of stored, as long as the rebuilt values are equal.
// Structural configuration (geometry, sizes) is NOT restored; it is
// written as a fingerprint and validated, and a mismatch throws
// StateError. Restore failures always throw StateError — never
// CheckError — so callers that treat CheckError as a simulated crash
// (faultsim) cannot misclassify a corrupt snapshot.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "safedm/common/bits.hpp"

namespace safedm {

/// Thrown on malformed, truncated, or incompatible state streams.
/// Deliberately distinct from CheckError (see header comment).
class StateError : public std::runtime_error {
 public:
  explicit StateError(const std::string& what) : std::runtime_error(what) {}
};

/// Serializes tagged, versioned, length-prefixed sections into a byte
/// buffer. The stream starts with an 8-byte magic identifying the format.
class StateWriter {
 public:
  StateWriter();

  /// Open a section. `tag` must be exactly 4 ASCII characters. Sections
  /// nest; each begin must be matched by end_section(), which patches the
  /// section's payload length in place.
  void begin_section(std::string_view tag, u32 version);
  void end_section();

  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v);
  void put_u32(u32 v);
  void put_u64(u64 v);
  void put_i64(i64 v) { put_u64(static_cast<u64>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// Raw bytes — only for data that is already a byte sequence (memory
  /// pages, strings); never for structs (endianness, padding).
  void put_bytes(const void* data, std::size_t len);
  /// u64 length prefix + raw bytes.
  void put_string(std::string_view s);

  /// Finished stream. All sections must be closed.
  std::vector<u8> take();
  const std::vector<u8>& bytes() const { return buf_; }

 private:
  std::vector<u8> buf_;
  std::vector<std::size_t> open_;  // offsets of unpatched length fields
};

/// Reads a StateWriter stream back. All getters are bounds-checked
/// against the innermost open section (and the stream end) and throw
/// StateError on truncation. end_section() skips any unread payload, so
/// a reader built for version N tolerates trailing fields appended by a
/// same-version writer extension only via an explicit version bump —
/// unknown *sections* can be skipped, unknown *fields* cannot.
class StateReader {
 public:
  explicit StateReader(std::span<const u8> data);

  /// Open the next section, which must carry `tag`; returns its version.
  u32 begin_section(std::string_view tag);
  /// Open the next section and require an exact version match.
  void begin_section(std::string_view tag, u32 expect_version);
  /// Close the innermost section, skipping any unread payload bytes.
  void end_section();

  u8 get_u8();
  u16 get_u16();
  u32 get_u32();
  u64 get_u64();
  i64 get_i64() { return static_cast<i64>(get_u64()); }
  bool get_bool();
  void get_bytes(void* out, std::size_t len);
  std::string get_string();

  /// True once every byte of the stream has been consumed or skipped.
  bool at_end() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;

  std::span<const u8> data_;
  std::size_t pos_ = 0;
  std::vector<std::size_t> ends_;  // section end offsets, innermost last
};

/// In-memory snapshot with file-backed forms. The byte stream is a
/// complete StateWriter stream (magic included), so `to_file` writes it
/// verbatim and `from_file` validates via the StateReader magic check at
/// restore time.
struct Snapshot {
  std::vector<u8> bytes;

  void to_file(const std::string& path) const;
  static Snapshot from_file(const std::string& path);
};

void write_state_file(const std::string& path, std::span<const u8> bytes);
std::vector<u8> read_state_file(const std::string& path);

}  // namespace safedm
