// Deterministic PRNG (xoshiro256**) for reproducible experiments.
//
// The FPGA experiments in the paper have run-to-run variation from initial
// platform state; we reproduce "multiple runs" by seeding perturbations
// (arbiter phase, start order) from this generator so every experiment is
// replayable from its seed.
#pragma once

#include <cstdint>

#include "safedm/common/bits.hpp"

namespace safedm {

class Xoshiro256 {
 public:
  explicit Xoshiro256(u64 seed = 0xDEADBEEFCAFEF00DULL) noexcept { reseed(seed); }

  void reseed(u64 seed) noexcept {
    // SplitMix64 expansion of the seed into the four state words.
    u64 x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  u64 next() noexcept {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound).
  u64 below(u64 bound) noexcept { return bound == 0 ? 0 : next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) noexcept { return lo + below(hi - lo + 1); }

  bool chance(double p) noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
  u64 state_[4]{};
};

}  // namespace safedm
