// Minimal fixed-size thread pool for the embarrassingly-parallel layers of
// the experiment harness (independent MpSoc runs, config sweeps).
//
// Deliberately work-stealing-free: one shared FIFO queue under a mutex is
// plenty when each task is an entire simulation run (milliseconds to
// seconds of work). With `threads == 1` the pool degenerates to inline
// serial execution — bit-identical to the historical serial harness and
// the debugging escape hatch (SAFEDM_BENCH_THREADS=1).
//
// parallel_for() is the workhorse: the calling thread participates in
// draining the index range, so a nested parallel_for from inside a worker
// simply runs its share inline instead of deadlocking on the queue.
//
// Concurrency contract (audited under TSan — `./ci.sh tsan` runs the unit
// and property labels against this code):
//
//  * submit() publishes the task by pushing the queue under `mutex_`; the
//    worker pops under the same mutex, so everything sequenced before
//    submit() in the producer happens-before the task body in the worker
//    (mutex release/acquire pair). Tasks themselves run OUTSIDE the lock.
//  * wait_idle() returns only after observing `queue_.empty() &&
//    running_ == 0` under `mutex_`. A worker decrements `running_` in a
//    locked section entered after the task body finishes, so all side
//    effects of every completed task happen-before wait_idle() returns.
//  * first_error_ is only ever touched under `mutex_` — including on the
//    serial (no-worker) submit path, where the pool may still be driven
//    from several external threads concurrently. wait_idle() atomically
//    takes-and-clears it, so an exception is rethrown exactly once.
//  * parallel_for(): index claiming uses a relaxed fetch_add — relaxed is
//    sufficient because atomicity alone guarantees each index is claimed
//    exactly once, and no data flows between claimants through `next`.
//    Completion uses `active` decremented with acq_rel inside the
//    ForState mutex, and the caller re-checks it (acquire) under the same
//    mutex, so every helper's writes happen-before parallel_for returns.
//  * The destructor sets `stopping_` under `mutex_`, wakes every worker,
//    and join()s them — thread::join gives the final happens-before edge,
//    so no pool memory is touched after ~ThreadPool() begins returning.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace safedm {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (1 means inline serial execution: no worker threads).
  unsigned size() const { return workers_.empty() ? 1 : static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task; runs inline immediately in serial mode.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Rethrows the first
  /// exception any task raised since the previous wait.
  void wait_idle();

  /// Run fn(0..count-1), distributing indices over the workers *and* the
  /// calling thread; returns when all indices completed. Rethrows the
  /// first exception raised by any index. Safe to nest (inner calls run
  /// inline on their worker).
  template <typename Fn>
  void parallel_for(std::size_t count, Fn&& fn) {
    if (count == 0) return;
    if (workers_.empty() || count == 1 || in_worker()) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    struct ForState {
      std::atomic<std::size_t> next{0};
      std::atomic<unsigned> active{0};
      std::mutex mutex;
      std::condition_variable done;
      std::exception_ptr error;
    };
    auto state = std::make_shared<ForState>();
    std::size_t helper_count = std::min<std::size_t>(workers_.size(), count - 1);
    const auto drain = [state, &fn, count] {
      std::size_t i;
      while ((i = state->next.fetch_add(1, std::memory_order_relaxed)) < count) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->mutex);
          if (!state->error) state->error = std::current_exception();
        }
      }
    };
    state->active.store(static_cast<unsigned>(helper_count), std::memory_order_relaxed);
    for (std::size_t h = 0; h < helper_count; ++h) {
      submit([state, drain] {
        drain();
        std::lock_guard<std::mutex> lock(state->mutex);
        if (state->active.fetch_sub(1, std::memory_order_acq_rel) == 1)
          state->done.notify_all();
      });
    }
    drain();  // the caller works too
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] { return state->active.load(std::memory_order_acquire) == 0; });
    if (state->error) std::rethrow_exception(state->error);
  }

 private:
  static bool in_worker();
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;  // lint: guarded-by(mutex_)
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  unsigned running_ = 0;             // lint: guarded-by(mutex_)
  bool stopping_ = false;            // lint: guarded-by(mutex_)
  std::exception_ptr first_error_;   // lint: guarded-by(mutex_)
};

/// Thread count for the bench harness, from SAFEDM_BENCH_THREADS:
///   >= 1          — that many workers (1 forces the historical serial path)
///   0             — explicit "auto": hardware concurrency
///   unset         — auto
///   anything else — auto, with a one-time warning through safedm::Logger
unsigned bench_thread_count();

}  // namespace safedm
