#include "safedm/common/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

#include "safedm/common/state.hpp"

namespace safedm {

MappedFile::~MappedFile() {
  if (data_ != nullptr && size_ != 0)
    ::munmap(const_cast<u8*>(data_), size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr && size_ != 0) ::munmap(const_cast<u8*>(data_), size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw StateError("cannot open '" + path + "' for mapping");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw StateError("cannot stat '" + path + "'");
  }
  MappedFile out;
  out.size_ = static_cast<std::size_t>(st.st_size);
  if (out.size_ != 0) {
    void* p = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      throw StateError("cannot mmap '" + path + "'");
    }
    out.data_ = static_cast<const u8*>(p);
  }
  ::close(fd);  // the mapping keeps the pages alive
  return out;
}

}  // namespace safedm
