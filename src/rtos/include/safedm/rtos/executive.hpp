// Redundant-task executive: the RTOS-side half of the paper's safety
// concept (Section III-A).
//
// An ASIL-D task (e.g. braking) releases a job every period. Each job runs
// redundantly on the core pair with SafeDM watching. If SafeDM reports
// diversity loss per the configured policy, the executive applies the
// paper's corrective action: the job is DROPPED (the previous actuation
// command stays in force — safe as long as drops are not consecutive
// beyond the Fault Tolerant Time Interval) and the relaunch policy decides
// whether subsequent jobs get staggering. The executive also cross-checks
// the redundant outputs, the error-detection mechanism the diversity
// argument protects.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "safedm/assembler/assembler.hpp"
#include "safedm/safedm/config.hpp"
#include "safedm/soc/soc.hpp"

namespace safedm::rtos {

/// What the executive does after a diversity-loss drop.
enum class RelaunchPolicy : u8 {
  kNone = 0,           // keep launching without staggering (hope it passes)
  kStaggerNextJob,     // stagger the next job only, then fall back
  kStaggerForever,     // once burnt, always stagger (intrusive but safe)
};

struct TaskConfig {
  std::string name = "task";
  unsigned jobs = 8;                 // jobs to run
  unsigned ftti_jobs = 2;            // consecutive drops tolerated before safe state
  monitor::ReportMode report = monitor::ReportMode::kInterruptThreshold;
  u32 diversity_loss_threshold = 32; // no-div cycles before a job is dropped
  RelaunchPolicy relaunch = RelaunchPolicy::kStaggerNextJob;
  unsigned stagger_nops = 1000;
  u64 job_cycle_budget = 30'000'000;
};

struct JobRecord {
  unsigned index = 0;
  unsigned stagger_used = 0;
  bool dropped = false;         // diversity loss -> job result discarded
  bool outputs_matched = false; // redundant cross-check
  u64 cycles = 0;
  u64 nodiv_cycles = 0;
};

struct RunSummary {
  std::vector<JobRecord> jobs;
  unsigned drops = 0;
  unsigned max_consecutive_drops = 0;
  bool safe_state_entered = false;  // FTTI exhausted
  u64 total_cycles = 0;

  double drop_rate() const {
    return jobs.empty() ? 0.0 : static_cast<double>(drops) / jobs.size();
  }
};

/// The executive's inter-job progress state, made explicit (it used to be
/// loop-local in run()) so a campaign can checkpoint an executive between
/// jobs and resume it elsewhere.
struct ExecutiveState {
  unsigned next_job = 0;
  unsigned consecutive_drops = 0;
  bool stagger_armed = false;    // kStaggerNextJob one-shot
  bool stagger_latched = false;  // kStaggerForever latch
  RunSummary summary;
};

class RedundantTaskExecutive {
 public:
  /// `configure_soc` may perturb the platform per job (fault/misconfig
  /// injection in tests and benches); identity by default.
  using SocConfigurator = std::function<soc::SocConfig(unsigned job_index)>;

  RedundantTaskExecutive(TaskConfig task, assembler::Program program);

  void set_soc_configurator(SocConfigurator configurator);

  /// Run the configured number of jobs (stops early on safe-state entry).
  /// Equivalent to reset() + resume().
  RunSummary run();

  /// Stepped interface: run one job and apply the drop/relaunch policy.
  /// Returns false when there is nothing left to do.
  bool step_job();
  /// Drain all remaining jobs; returns the (final) summary.
  RunSummary resume();
  void reset();
  bool finished() const;
  const ExecutiveState& state() const { return exec_; }

  /// Inter-job progress only — the executive owns no mid-job state (each
  /// job builds a fresh SoC+monitor internally).
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  JobRecord run_job(unsigned index, unsigned stagger, const soc::SocConfig& soc_config);

  TaskConfig task_;              // lint: no-snapshot(task definition; restore validates job count against it)
  assembler::Program program_;   // lint: no-snapshot(workload image, fixed at construction)
  SocConfigurator configurator_; // lint: no-snapshot(SoC factory callback, not serializable)
  ExecutiveState exec_;
};

}  // namespace safedm::rtos
