#include "safedm/rtos/executive.hpp"

#include <algorithm>

#include "safedm/common/check.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::rtos {

RedundantTaskExecutive::RedundantTaskExecutive(TaskConfig task, assembler::Program program)
    : task_(std::move(task)), program_(std::move(program)) {
  SAFEDM_CHECK(task_.ftti_jobs >= 1);
  configurator_ = [](unsigned) { return soc::SocConfig{}; };
}

void RedundantTaskExecutive::set_soc_configurator(SocConfigurator configurator) {
  SAFEDM_CHECK(configurator != nullptr);
  configurator_ = std::move(configurator);
}

JobRecord RedundantTaskExecutive::run_job(unsigned index, unsigned stagger,
                                          const soc::SocConfig& soc_config) {
  soc::MpSoc soc(soc_config);

  monitor::SafeDmConfig dm_config;
  dm_config.report = task_.report;
  dm_config.interrupt_threshold = task_.diversity_loss_threshold;
  dm_config.start_enabled = true;
  monitor::SafeDm dm(dm_config);
  soc.add_observer(&dm);

  bool diversity_lost = false;
  dm.set_interrupt_handler([&](u64) { diversity_lost = true; });

  soc.load_redundant(program_, stagger, /*delayed_core=*/1);
  dm.set_prelude_ignore(0, soc.prelude_commits(0));
  dm.set_prelude_ignore(1, soc.prelude_commits(1));
  const u64 cycles = soc.run(task_.job_cycle_budget);
  dm.finalize();

  JobRecord record;
  record.index = index;
  record.stagger_used = stagger;
  record.cycles = cycles;
  record.nodiv_cycles = dm.counters().nodiv_cycles;
  // Poll-only mode: the executive itself applies the threshold when no
  // interrupt was programmed.
  if (task_.report == monitor::ReportMode::kPollOnly)
    diversity_lost = dm.counters().nodiv_cycles >= task_.diversity_loss_threshold;
  record.dropped = diversity_lost || !soc.all_halted();
  record.outputs_matched =
      soc.memory().load(soc.data_base(0) + workloads::kResultOffset, 8) ==
      soc.memory().load(soc.data_base(1) + workloads::kResultOffset, 8);
  return record;
}

RunSummary RedundantTaskExecutive::run() {
  RunSummary summary;
  unsigned consecutive_drops = 0;
  unsigned stagger = task_.relaunch == RelaunchPolicy::kStaggerForever ? 0 : 0;
  bool stagger_armed = false;  // kStaggerNextJob one-shot
  bool stagger_latched = false;  // kStaggerForever latch

  for (unsigned job = 0; job < task_.jobs; ++job) {
    stagger = 0;
    if (stagger_armed || stagger_latched) stagger = task_.stagger_nops;
    stagger_armed = false;

    const JobRecord record = run_job(job, stagger, configurator_(job));
    summary.jobs.push_back(record);
    summary.total_cycles += record.cycles;

    if (record.dropped) {
      ++summary.drops;
      ++consecutive_drops;
      summary.max_consecutive_drops =
          std::max(summary.max_consecutive_drops, consecutive_drops);
      switch (task_.relaunch) {
        case RelaunchPolicy::kNone:
          break;
        case RelaunchPolicy::kStaggerNextJob:
          stagger_armed = true;
          break;
        case RelaunchPolicy::kStaggerForever:
          stagger_latched = true;
          break;
      }
      if (consecutive_drops >= task_.ftti_jobs) {
        // FTTI exhausted: the system transitions to its safe state.
        summary.safe_state_entered = true;
        break;
      }
    } else {
      consecutive_drops = 0;
    }
  }
  return summary;
}

}  // namespace safedm::rtos
