#include "safedm/rtos/executive.hpp"

#include <algorithm>

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"
#include "safedm/safedm/monitor.hpp"
// lint: allow-layer(reuses the workload corpus's kResultOffset ABI constant only)
#include "safedm/workloads/workloads.hpp"

namespace safedm::rtos {

RedundantTaskExecutive::RedundantTaskExecutive(TaskConfig task, assembler::Program program)
    : task_(std::move(task)), program_(std::move(program)) {
  SAFEDM_CHECK(task_.ftti_jobs >= 1);
  configurator_ = [](unsigned) { return soc::SocConfig{}; };
}

void RedundantTaskExecutive::set_soc_configurator(SocConfigurator configurator) {
  SAFEDM_CHECK(configurator != nullptr);
  configurator_ = std::move(configurator);
}

JobRecord RedundantTaskExecutive::run_job(unsigned index, unsigned stagger,
                                          const soc::SocConfig& soc_config) {
  soc::MpSoc soc(soc_config);

  monitor::SafeDmConfig dm_config;
  dm_config.report = task_.report;
  dm_config.interrupt_threshold = task_.diversity_loss_threshold;
  dm_config.start_enabled = true;
  monitor::SafeDm dm(dm_config);
  soc.add_observer(&dm);

  bool diversity_lost = false;
  dm.set_interrupt_handler([&](u64) { diversity_lost = true; });

  soc.load_redundant(program_, stagger, /*delayed_core=*/1);
  dm.set_prelude_ignore(0, soc.prelude_commits(0));
  dm.set_prelude_ignore(1, soc.prelude_commits(1));
  const u64 cycles = soc.run(task_.job_cycle_budget);
  dm.finalize();

  JobRecord record;
  record.index = index;
  record.stagger_used = stagger;
  record.cycles = cycles;
  record.nodiv_cycles = dm.counters().nodiv_cycles;
  // Poll-only mode: the executive itself applies the threshold when no
  // interrupt was programmed.
  if (task_.report == monitor::ReportMode::kPollOnly)
    diversity_lost = dm.counters().nodiv_cycles >= task_.diversity_loss_threshold;
  record.dropped = diversity_lost || !soc.all_halted();
  record.outputs_matched =
      soc.memory().load(soc.data_base(0) + workloads::kResultOffset, 8) ==
      soc.memory().load(soc.data_base(1) + workloads::kResultOffset, 8);
  return record;
}

void RedundantTaskExecutive::reset() { exec_ = ExecutiveState{}; }

bool RedundantTaskExecutive::finished() const {
  return exec_.summary.safe_state_entered || exec_.next_job >= task_.jobs;
}

bool RedundantTaskExecutive::step_job() {
  if (finished()) return false;

  unsigned stagger = 0;
  if (exec_.stagger_armed || exec_.stagger_latched) stagger = task_.stagger_nops;
  exec_.stagger_armed = false;

  const unsigned job = exec_.next_job++;
  const JobRecord record = run_job(job, stagger, configurator_(job));
  exec_.summary.jobs.push_back(record);
  exec_.summary.total_cycles += record.cycles;

  if (record.dropped) {
    ++exec_.summary.drops;
    ++exec_.consecutive_drops;
    exec_.summary.max_consecutive_drops =
        std::max(exec_.summary.max_consecutive_drops, exec_.consecutive_drops);
    switch (task_.relaunch) {
      case RelaunchPolicy::kNone:
        break;
      case RelaunchPolicy::kStaggerNextJob:
        exec_.stagger_armed = true;
        break;
      case RelaunchPolicy::kStaggerForever:
        exec_.stagger_latched = true;
        break;
    }
    // FTTI exhausted: the system transitions to its safe state.
    if (exec_.consecutive_drops >= task_.ftti_jobs) exec_.summary.safe_state_entered = true;
  } else {
    exec_.consecutive_drops = 0;
  }
  return !finished();
}

RunSummary RedundantTaskExecutive::resume() {
  while (step_job()) {
  }
  return exec_.summary;
}

RunSummary RedundantTaskExecutive::run() {
  reset();
  return resume();
}

void RedundantTaskExecutive::save_state(StateWriter& w) const {
  w.begin_section("RTEX", 1);
  w.put_u32(exec_.next_job);
  w.put_u32(exec_.consecutive_drops);
  w.put_bool(exec_.stagger_armed);
  w.put_bool(exec_.stagger_latched);
  w.put_u64(exec_.summary.jobs.size());
  for (const JobRecord& job : exec_.summary.jobs) {
    w.put_u32(job.index);
    w.put_u32(job.stagger_used);
    w.put_bool(job.dropped);
    w.put_bool(job.outputs_matched);
    w.put_u64(job.cycles);
    w.put_u64(job.nodiv_cycles);
  }
  w.put_u32(exec_.summary.drops);
  w.put_u32(exec_.summary.max_consecutive_drops);
  w.put_bool(exec_.summary.safe_state_entered);
  w.put_u64(exec_.summary.total_cycles);
  w.end_section();
}

void RedundantTaskExecutive::restore_state(StateReader& r) {
  r.begin_section("RTEX", 1);
  exec_ = ExecutiveState{};
  exec_.next_job = r.get_u32();
  exec_.consecutive_drops = r.get_u32();
  exec_.stagger_armed = r.get_bool();
  exec_.stagger_latched = r.get_bool();
  const u64 n = r.get_u64();
  if (n > task_.jobs) throw StateError("executive job-record count exceeds configured jobs");
  for (u64 i = 0; i < n; ++i) {
    JobRecord job;
    job.index = r.get_u32();
    job.stagger_used = r.get_u32();
    job.dropped = r.get_bool();
    job.outputs_matched = r.get_bool();
    job.cycles = r.get_u64();
    job.nodiv_cycles = r.get_u64();
    exec_.summary.jobs.push_back(job);
  }
  exec_.summary.drops = r.get_u32();
  exec_.summary.max_consecutive_drops = r.get_u32();
  exec_.summary.safe_state_entered = r.get_bool();
  exec_.summary.total_cycles = r.get_u64();
  r.end_section();
}

}  // namespace safedm::rtos
