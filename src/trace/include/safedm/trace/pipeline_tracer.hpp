// Human-readable cycle-by-cycle pipeline trace.
//
// Replaces the paper's Modelsim inspection workflow (Section V-A: "analyze
// the timing behavior ... to see in a cycle-by-cycle basis what occurs in
// the pipeline of the cores and in SafeDM"): attach the tracer as an
// observer and it renders both cores' stage occupancy, the staggering
// counter and the per-cycle diversity verdict.
#pragma once

#include <ostream>

// lint: allow-layer(debug sink: renders monitor verdicts, no soc/safedm code depends back on it)
#include "safedm/safedm/monitor.hpp"
// lint: allow-layer(implements soc::CycleObserver and decodes CoreTapFrame)
#include "safedm/soc/soc.hpp"

namespace safedm::trace {

struct TracerConfig {
  u64 start_cycle = 0;                 // first traced cycle
  u64 end_cycle = ~u64{0};             // last traced cycle (inclusive)
  bool disassemble = true;             // render mnemonics instead of hex
  bool only_when_lacking_diversity = false;  // trace only flagged cycles
};

class PipelineTracer final : public soc::CycleObserver {
 public:
  /// `monitor` may be null (no verdict column).
  PipelineTracer(std::ostream& out, const TracerConfig& config,
                 const monitor::SafeDm* monitor = nullptr);

  void on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                const core::CoreTapFrame& frame1) override;

  u64 traced_cycles() const { return traced_; }

 private:
  void render_core(const core::CoreTapFrame& frame);

  std::ostream& out_;
  TracerConfig config_;
  const monitor::SafeDm* monitor_;
  u64 traced_ = 0;
  bool header_written_ = false;
};

}  // namespace safedm::trace
