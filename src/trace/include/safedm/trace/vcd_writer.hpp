// VCD (Value Change Dump) export of the SafeDM observation signals, for
// inspection in any waveform viewer (GTKWave etc.) — the offline analogue
// of watching the VHDL module in Modelsim.
//
// Dumped per core: stage-slot valid/encoding for all o×p slots, the
// monitored register-port enables/values, hold and commit count; plus the
// monitor's diversity verdict lines when a SafeDm is attached.
#pragma once

#include <ostream>
#include <string>
#include <vector>

// lint: allow-layer(debug sink: renders monitor verdicts, no soc/safedm code depends back on it)
#include "safedm/safedm/monitor.hpp"
// lint: allow-layer(implements soc::CycleObserver and decodes CoreTapFrame)
#include "safedm/soc/soc.hpp"

namespace safedm::trace {

class VcdWriter final : public soc::CycleObserver {
 public:
  /// `monitor` may be null (no verdict signals). The header is emitted on
  /// the first observed cycle.
  VcdWriter(std::ostream& out, const monitor::SafeDm* monitor = nullptr);

  void on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                const core::CoreTapFrame& frame1) override;

  /// Number of value changes written (test/diagnostic aid).
  u64 changes_written() const { return changes_; }

 private:
  struct Signal {
    std::string id;    // VCD short identifier
    unsigned width;    // bits
    u64 last = ~u64{0};  // last written value (force first write)
  };

  std::string next_id();
  unsigned declare(const std::string& name, unsigned width);  // returns index
  void write_header();
  void emit(unsigned signal, u64 value);
  void dump_frame(unsigned base_index, const core::CoreTapFrame& frame);

  std::ostream& out_;
  const monitor::SafeDm* monitor_;
  std::vector<Signal> signals_;
  std::vector<std::string> declarations_;
  unsigned id_counter_ = 0;
  bool header_done_ = false;
  u64 changes_ = 0;

  // Signal index layout, filled by the constructor.
  unsigned core_base_[2] = {0, 0};
  unsigned sig_nodiv_ = 0;
  unsigned sig_ds_match_ = 0;
  unsigned sig_is_match_ = 0;
  unsigned sig_diff_ = 0;
};

}  // namespace safedm::trace
