#include "safedm/trace/vcd_writer.hpp"

#include <sstream>

namespace safedm::trace {
namespace {

/// Per-core signal count: per stage slot {valid, encoding}, per port
/// {enable, value}, plus hold and commits.
constexpr unsigned kSlotSignals = core::kPipelineStages * core::kMaxIssueWidth * 2;
constexpr unsigned kPortSignals = core::kMaxPorts * 2;
constexpr unsigned kPerCore = kSlotSignals + kPortSignals + 2;

std::string binary(u64 value, unsigned width) {
  std::string bits(width, '0');
  for (unsigned i = 0; i < width; ++i)
    if (value & (u64{1} << i)) bits[width - 1 - i] = '1';
  return bits;
}

}  // namespace

VcdWriter::VcdWriter(std::ostream& out, const monitor::SafeDm* monitor)
    : out_(out), monitor_(monitor) {
  for (unsigned c = 0; c < 2; ++c) {
    core_base_[c] = static_cast<unsigned>(signals_.size());
    const std::string prefix = "core" + std::to_string(c) + ".";
    for (unsigned s = 0; s < core::kPipelineStages; ++s) {
      for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane) {
        const std::string slot =
            prefix + core::stage_name(static_cast<core::Stage>(s)) + "_l" + std::to_string(lane);
        declare(slot + "_valid", 1);
        declare(slot + "_inst", 32);
      }
    }
    for (unsigned p = 0; p < core::kMaxPorts; ++p) {
      declare(prefix + "port" + std::to_string(p) + "_en", 1);
      declare(prefix + "port" + std::to_string(p) + "_val", 64);
    }
    declare(prefix + "hold", 1);
    declare(prefix + "commits", 2);
  }
  if (monitor_ != nullptr) {
    sig_nodiv_ = declare("safedm.lack_of_diversity", 1);
    sig_ds_match_ = declare("safedm.ds_match", 1);
    sig_is_match_ = declare("safedm.is_match", 1);
    sig_diff_ = declare("safedm.inst_diff", 32);
  }
}

std::string VcdWriter::next_id() {
  // Identifiers over the printable range '!'..'~', base-94.
  unsigned n = id_counter_++;
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + n % 94));
    n /= 94;
  } while (n != 0);
  return id;
}

unsigned VcdWriter::declare(const std::string& name, unsigned width) {
  Signal signal;
  signal.id = next_id();
  signal.width = width;
  std::ostringstream decl;
  decl << "$var wire " << width << ' ' << signal.id << ' ' << name << " $end";
  declarations_.push_back(decl.str());
  signals_.push_back(signal);
  return static_cast<unsigned>(signals_.size()) - 1;
}

void VcdWriter::write_header() {
  out_ << "$timescale 1ns $end\n$scope module safedm_soc $end\n";
  for (const std::string& decl : declarations_) out_ << decl << '\n';
  out_ << "$upscope $end\n$enddefinitions $end\n";
  header_done_ = true;
}

void VcdWriter::emit(unsigned index, u64 value) {
  Signal& signal = signals_[index];
  if (signal.last == value) return;
  signal.last = value;
  ++changes_;
  if (signal.width == 1) {
    out_ << (value ? '1' : '0') << signal.id << '\n';
  } else {
    out_ << 'b' << binary(value, signal.width) << ' ' << signal.id << '\n';
  }
}

void VcdWriter::dump_frame(unsigned base, const core::CoreTapFrame& frame) {
  unsigned index = base;
  for (unsigned s = 0; s < core::kPipelineStages; ++s) {
    for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane) {
      const core::StageSlotTap& slot = frame.stage[s][lane];
      emit(index++, slot.valid ? 1 : 0);
      emit(index++, slot.valid ? slot.encoding : 0);
    }
  }
  for (unsigned p = 0; p < core::kMaxPorts; ++p) {
    emit(index++, frame.port[p].enable ? 1 : 0);
    emit(index++, frame.port[p].enable ? frame.port[p].value : 0);
  }
  emit(index++, frame.hold ? 1 : 0);
  emit(index++, frame.commits);
}

void VcdWriter::on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                         const core::CoreTapFrame& frame1) {
  if (!header_done_) write_header();
  out_ << '#' << cycle << '\n';
  dump_frame(core_base_[0], frame0);
  dump_frame(core_base_[1], frame1);
  if (monitor_ != nullptr) {
    emit(sig_nodiv_, monitor_->lacking_diversity_now() ? 1 : 0);
    emit(sig_diff_, static_cast<u64>(static_cast<u32>(
                        static_cast<i32>(monitor_->instruction_diff()))));
    emit(sig_ds_match_, monitor_->ds_matched_now() ? 1 : 0);
    emit(sig_is_match_, monitor_->is_matched_now() ? 1 : 0);
  }
}

}  // namespace safedm::trace
