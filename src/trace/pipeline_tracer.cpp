#include "safedm/trace/pipeline_tracer.hpp"

#include <iomanip>

#include "safedm/isa/disasm.hpp"

namespace safedm::trace {

PipelineTracer::PipelineTracer(std::ostream& out, const TracerConfig& config,
                               const monitor::SafeDm* monitor)
    : out_(out), config_(config), monitor_(monitor) {}

void PipelineTracer::render_core(const core::CoreTapFrame& frame) {
  for (unsigned s = 0; s < core::kPipelineStages; ++s) {
    out_ << "  " << std::setw(2) << core::stage_name(static_cast<core::Stage>(s)) << ':';
    bool any = false;
    for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane) {
      const core::StageSlotTap& slot = frame.stage[s][lane];
      if (!slot.valid) continue;
      any = true;
      out_ << ' ';
      if (config_.disassemble) {
        out_ << '[' << isa::disassemble(slot.encoding) << ']';
      } else {
        out_ << std::hex << "[0x" << slot.encoding << ']' << std::dec;
      }
    }
    if (!any) out_ << " -";
    out_ << '\n';
  }
  out_ << "  ports:";
  for (unsigned p = 0; p < core::kMaxPorts; ++p) {
    if (!frame.port[p].enable) continue;
    out_ << " P" << p << "=0x" << std::hex << frame.port[p].value << std::dec;
  }
  out_ << (frame.hold ? "  (hold)" : "") << "  commits=" << frame.commits << '\n';
}

void PipelineTracer::on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                              const core::CoreTapFrame& frame1) {
  if (cycle < config_.start_cycle || cycle > config_.end_cycle) return;
  if (config_.only_when_lacking_diversity &&
      (monitor_ == nullptr || !monitor_->lacking_diversity_now()))
    return;

  if (!header_written_) {
    out_ << "==== pipeline trace (cycles " << config_.start_cycle << "..";
    if (config_.end_cycle == ~u64{0})
      out_ << "end";
    else
      out_ << config_.end_cycle;
    out_ << ") ====\n";
    header_written_ = true;
  }

  out_ << "cycle " << cycle;
  if (monitor_ != nullptr) {
    out_ << "  diff=" << monitor_->instruction_diff()
         << (monitor_->lacking_diversity_now() ? "  ** NO DIVERSITY **" : "");
  }
  out_ << '\n';
  out_ << " core0:\n";
  render_core(frame0);
  out_ << " core1:\n";
  render_core(frame1);
  ++traced_;
}

}  // namespace safedm::trace
