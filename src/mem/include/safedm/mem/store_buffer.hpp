// Core-local coalescing store buffer.
//
// Write-through L1 sends every store towards L2 through this buffer; while
// the bus is busy, stores to the same cache line merge into one entry so
// they later drain as a single transaction. This is the mechanism behind
// the paper's `pm` timing anomaly (Section V-C): a delayed core's stores
// pile up locally, coalesce, and the program ends up *faster*.
#pragma once

#include <deque>

#include "safedm/common/bits.hpp"

namespace safedm {
class StateReader;
class StateWriter;
}  // namespace safedm

namespace safedm::mem {

struct StoreBufferConfig {
  unsigned entries = 8;
  unsigned line_bytes = 32;
  bool coalesce = true;  // ablation hook: disable line merging
};

struct StoreBufferStats {
  u64 pushed = 0;     // stores accepted
  u64 coalesced = 0;  // stores merged into an existing entry
  u64 drained = 0;    // entries (bus transactions) completed
  u64 full_stalls = 0;
};

class StoreBuffer {
 public:
  explicit StoreBuffer(const StoreBufferConfig& config) : config_(config) {}

  const StoreBufferConfig& config() const { return config_; }
  const StoreBufferStats& stats() const { return stats_; }

  bool empty() const { return lines_.empty(); }
  bool full() const { return lines_.size() >= config_.entries; }
  std::size_t size() const { return lines_.size(); }

  /// Try to accept a store to `addr`. Returns false (and counts a stall)
  /// when the buffer is full and the store cannot coalesce.
  bool push(u64 addr);

  /// Line address of the oldest entry (next to drain). Requires !empty().
  u64 head_line() const;

  /// Complete the drain of the head entry.
  void pop_head();

  /// True if any pending entry covers the line containing `addr`.
  bool holds_line(u64 addr) const;

  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  u64 line_of(u64 addr) const { return align_down(addr, config_.line_bytes); }

  StoreBufferConfig config_;
  std::deque<u64> lines_;  // FIFO of pending line addresses
  StoreBufferStats stats_;
};

}  // namespace safedm::mem
