// Set-associative cache tag/LRU model (timing only; data lives in PhysMem).
#pragma once

#include <string>
#include <vector>

#include "safedm/common/bits.hpp"

namespace safedm {
class StateReader;
class StateWriter;
}  // namespace safedm

namespace safedm::mem {

struct CacheConfig {
  u64 size_bytes = 16 * 1024;
  unsigned ways = 4;
  unsigned line_bytes = 32;

  u64 sets() const { return size_bytes / (static_cast<u64>(ways) * line_bytes); }
};

struct CacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
  u64 writeback_evictions = 0;

  u64 accesses() const { return hits + misses; }
  double miss_rate() const {
    return accesses() ? static_cast<double>(misses) / static_cast<double>(accesses()) : 0.0;
  }
};

/// Tags + true-LRU state of one cache. The owner decides the policy
/// (write-through L1 never marks dirty; write-back L2 does).
class CacheTags {
 public:
  explicit CacheTags(const CacheConfig& config, std::string name = {});

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  /// Tag lookup; on hit updates LRU and returns true. Counts in stats.
  bool access(u64 addr);

  /// Lookup without LRU update or stats (for probing).
  bool present(u64 addr) const;

  /// Result of allocating a line.
  struct Fill {
    bool evicted = false;
    u64 victim_line_addr = 0;
    bool victim_dirty = false;
  };

  /// Allocate the line containing `addr` (must currently miss), evicting
  /// the LRU way. `dirty` marks the new line dirty (write-allocate store).
  Fill fill(u64 addr, bool dirty = false);

  /// Mark the line containing `addr` dirty if present; returns presence.
  bool mark_dirty(u64 addr);

  void invalidate_all();

  /// Full tag/LRU/stats snapshot; geometry is validated on restore.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

  u64 line_addr(u64 addr) const { return align_down(addr, config_.line_bytes); }

 private:
  struct Way {
    bool valid = false;
    bool dirty = false;
    u64 tag = 0;
    u64 lru = 0;  // higher = more recently used
  };

  u64 set_index(u64 addr) const;
  u64 tag_of(u64 addr) const;
  Way* find(u64 addr);
  const Way* find(u64 addr) const;

  CacheConfig config_;
  std::string name_;  // lint: no-snapshot(structural identity, used for restore error messages)
  std::vector<Way> ways_;  // sets * ways, row-major by set
  u64 lru_clock_ = 0;
  CacheStats stats_;
};

}  // namespace safedm::mem
