// Flat physical memory backing the whole MPSoC.
//
// Functional data lives here; the cache models above it track tags/timing
// only ("functional-first, timing-tags", see DESIGN.md). This is safe for
// the redundant-execution workloads because the two cores use disjoint
// data segments, so delayed store visibility cannot change results.
#pragma once

#include <cstdlib>
#include <memory>
#include <span>
#include <vector>

#include "safedm/common/bits.hpp"
#include "safedm/common/mem_port.hpp"

namespace safedm {
class StateReader;
class StateWriter;
}  // namespace safedm

namespace safedm::mem {

class PhysMem final : public MemoryPort {
 public:
  PhysMem(u64 base, u64 size_bytes);

  u64 base() const { return base_; }
  u64 size() const { return size_; }
  bool contains(u64 addr, u64 len = 1) const {
    return addr >= base_ && addr + len <= base_ + size_;
  }

  u64 load(u64 addr, unsigned size) override;
  void store(u64 addr, u64 value, unsigned size) override;

  /// Backdoor bulk access for program loading and test inspection.
  void write_block(u64 addr, std::span<const u8> bytes);
  void read_block(u64 addr, std::span<u8> out) const;
  void fill(u64 addr, u64 len, u8 value);

  /// Sparse serialization: only pages with nonzero bytes are written, so
  /// a 64 MB address space with a few hundred KB live costs a few hundred
  /// KB per snapshot. Restore zeroes previously-touched pages, then
  /// applies the snapshot's pages. The touched-page bitmap (maintained by
  /// every mutator) keeps both operations O(touched), not O(capacity) —
  /// checkpoint-heavy fault campaigns snapshot memory thousands of times.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  struct FreeDeleter {
    void operator()(u8* p) const { std::free(p); }
  };

  u64 index(u64 addr, unsigned size) const;
  void touch(u64 offset, u64 len);

  u64 base_;
  u64 size_;
  // calloc, not a value-initialized vector: the kernel maps zero pages
  // lazily, so constructing a 64 MB SoC doesn't memset 64 MB. Fault
  // campaigns build thousands of short-lived SoCs; the eager memset was
  // their dominant per-injection cost.
  std::unique_ptr<u8[], FreeDeleter> bytes_;
  std::vector<u8> touched_;  // per 4 KB page: 1 if ever written
};

}  // namespace safedm::mem
