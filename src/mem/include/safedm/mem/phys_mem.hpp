// Flat physical memory backing the whole MPSoC.
//
// Functional data lives here; the cache models above it track tags/timing
// only ("functional-first, timing-tags", see DESIGN.md). This is safe for
// the redundant-execution workloads because the two cores use disjoint
// data segments, so delayed store visibility cannot change results.
#pragma once

#include <span>
#include <vector>

#include "safedm/common/bits.hpp"
#include "safedm/common/mem_port.hpp"

namespace safedm::mem {

class PhysMem final : public MemoryPort {
 public:
  PhysMem(u64 base, u64 size_bytes);

  u64 base() const { return base_; }
  u64 size() const { return bytes_.size(); }
  bool contains(u64 addr, u64 len = 1) const {
    return addr >= base_ && addr + len <= base_ + bytes_.size();
  }

  u64 load(u64 addr, unsigned size) override;
  void store(u64 addr, u64 value, unsigned size) override;

  /// Backdoor bulk access for program loading and test inspection.
  void write_block(u64 addr, std::span<const u8> bytes);
  void read_block(u64 addr, std::span<u8> out) const;
  void fill(u64 addr, u64 len, u8 value);

 private:
  u64 index(u64 addr, unsigned size) const;

  u64 base_;
  std::vector<u8> bytes_;
};

}  // namespace safedm::mem
