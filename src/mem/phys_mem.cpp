#include "safedm/mem/phys_mem.hpp"

#include <algorithm>
#include <cstring>

#include "safedm/common/check.hpp"

namespace safedm::mem {

PhysMem::PhysMem(u64 base, u64 size_bytes) : base_(base), bytes_(size_bytes, 0) {
  SAFEDM_CHECK(size_bytes > 0);
}

u64 PhysMem::index(u64 addr, unsigned size) const {
  SAFEDM_CHECK_MSG(size == 1 || size == 2 || size == 4 || size == 8,
                   "unsupported access size " << size);
  SAFEDM_CHECK_MSG(contains(addr, size),
                   "access at 0x" << std::hex << addr << " size " << std::dec << size
                                  << " outside memory [0x" << std::hex << base_ << ", 0x"
                                  << base_ + bytes_.size() << ")");
  return addr - base_;
}

u64 PhysMem::load(u64 addr, unsigned size) {
  const u64 i = index(addr, size);
  u64 value = 0;
  std::memcpy(&value, bytes_.data() + i, size);
  return value;
}

void PhysMem::store(u64 addr, u64 value, unsigned size) {
  const u64 i = index(addr, size);
  std::memcpy(bytes_.data() + i, &value, size);
}

void PhysMem::write_block(u64 addr, std::span<const u8> bytes) {
  if (bytes.empty()) return;
  SAFEDM_CHECK(contains(addr, bytes.size()));
  std::copy(bytes.begin(), bytes.end(), bytes_.begin() + static_cast<std::ptrdiff_t>(addr - base_));
}

void PhysMem::read_block(u64 addr, std::span<u8> out) const {
  if (out.empty()) return;
  SAFEDM_CHECK(contains(addr, out.size()));
  std::copy_n(bytes_.begin() + static_cast<std::ptrdiff_t>(addr - base_), out.size(), out.begin());
}

void PhysMem::fill(u64 addr, u64 len, u8 value) {
  if (len == 0) return;
  SAFEDM_CHECK(contains(addr, len));
  std::fill_n(bytes_.begin() + static_cast<std::ptrdiff_t>(addr - base_), len, value);
}

}  // namespace safedm::mem
