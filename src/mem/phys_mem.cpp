#include "safedm/mem/phys_mem.hpp"

#include <algorithm>
#include <cstring>

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm::mem {

namespace {
constexpr u64 kPageBytes = 4096;

bool page_is_zero(const u8* p, u64 len) {
  for (u64 i = 0; i < len; ++i)
    if (p[i] != 0) return false;
  return true;
}
}  // namespace

PhysMem::PhysMem(u64 base, u64 size_bytes)
    : base_(base),
      size_(size_bytes),
      bytes_(static_cast<u8*>(std::calloc(size_bytes, 1))) {
  SAFEDM_CHECK(size_bytes > 0);
  SAFEDM_CHECK_MSG(bytes_ != nullptr, "cannot allocate " << size_bytes << " bytes of memory");
  touched_.assign((size_bytes + kPageBytes - 1) / kPageBytes, 0);
}

void PhysMem::touch(u64 offset, u64 len) {
  const u64 first = offset / kPageBytes;
  const u64 last = (offset + len - 1) / kPageBytes;
  for (u64 p = first; p <= last; ++p) touched_[p] = 1;
}

u64 PhysMem::index(u64 addr, unsigned size) const {
  SAFEDM_CHECK_MSG(size == 1 || size == 2 || size == 4 || size == 8,
                   "unsupported access size " << size);
  SAFEDM_CHECK_MSG(contains(addr, size),
                   "access at 0x" << std::hex << addr << " size " << std::dec << size
                                  << " outside memory [0x" << std::hex << base_ << ", 0x"
                                  << base_ + size_ << ")");
  return addr - base_;
}

u64 PhysMem::load(u64 addr, unsigned size) {
  const u64 i = index(addr, size);
  u64 value = 0;
  std::memcpy(&value, bytes_.get() + i, size);
  return value;
}

void PhysMem::store(u64 addr, u64 value, unsigned size) {
  const u64 i = index(addr, size);
  std::memcpy(bytes_.get() + i, &value, size);
  touch(i, size);
}

void PhysMem::write_block(u64 addr, std::span<const u8> bytes) {
  if (bytes.empty()) return;
  SAFEDM_CHECK(contains(addr, bytes.size()));
  std::memcpy(bytes_.get() + (addr - base_), bytes.data(), bytes.size());
  touch(addr - base_, bytes.size());
}

void PhysMem::read_block(u64 addr, std::span<u8> out) const {
  if (out.empty()) return;
  SAFEDM_CHECK(contains(addr, out.size()));
  std::memcpy(out.data(), bytes_.get() + (addr - base_), out.size());
}

void PhysMem::fill(u64 addr, u64 len, u8 value) {
  if (len == 0) return;
  SAFEDM_CHECK(contains(addr, len));
  std::memset(bytes_.get() + (addr - base_), value, len);
  touch(addr - base_, len);
}

void PhysMem::save_state(StateWriter& w) const {
  w.begin_section("PMEM", 1);
  w.put_u64(base_);
  w.put_u64(size_);
  // Only touched pages can be nonzero; the zero-check inside keeps the
  // stream canonical (a page written then overwritten with zeroes is
  // dropped, so the snapshot depends on content, not write history).
  std::vector<u64> live;
  for (u64 p = 0; p < touched_.size(); ++p) {
    if (!touched_[p]) continue;
    const u64 off = p * kPageBytes;
    if (!page_is_zero(bytes_.get() + off, std::min(kPageBytes, size_ - off)))
      live.push_back(p);
  }
  w.put_u64(live.size());
  for (const u64 p : live) {
    const u64 off = p * kPageBytes;
    w.put_u64(p);
    w.put_bytes(bytes_.get() + off, std::min(kPageBytes, size_ - off));
  }
  w.end_section();
}

void PhysMem::restore_state(StateReader& r) {
  r.begin_section("PMEM", 1);
  if (r.get_u64() != base_ || r.get_u64() != size_)
    throw StateError("physical memory geometry mismatch");
  // Zero only the pages this instance has ever written — O(touched), and
  // every other page is already zero.
  for (u64 p = 0; p < touched_.size(); ++p) {
    if (!touched_[p]) continue;
    const u64 off = p * kPageBytes;
    std::memset(bytes_.get() + off, 0, std::min(kPageBytes, size_ - off));
    touched_[p] = 0;
  }
  const u64 pages = touched_.size();
  const u64 live = r.get_u64();
  for (u64 i = 0; i < live; ++i) {
    const u64 p = r.get_u64();
    if (p >= pages) throw StateError("physical memory page index out of range");
    const u64 off = p * kPageBytes;
    r.get_bytes(bytes_.get() + off, std::min(kPageBytes, size_ - off));
    touched_[p] = 1;
  }
  r.end_section();
}

}  // namespace safedm::mem
