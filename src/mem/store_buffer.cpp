#include "safedm/mem/store_buffer.hpp"

#include <algorithm>

#include "safedm/common/check.hpp"

namespace safedm::mem {

bool StoreBuffer::push(u64 addr) {
  const u64 line = line_of(addr);
  if (config_.coalesce) {
    const auto it = std::find(lines_.begin(), lines_.end(), line);
    if (it != lines_.end()) {
      ++stats_.pushed;
      ++stats_.coalesced;
      return true;
    }
  }
  if (full()) {
    ++stats_.full_stalls;
    return false;
  }
  lines_.push_back(line);
  ++stats_.pushed;
  return true;
}

u64 StoreBuffer::head_line() const {
  SAFEDM_CHECK(!lines_.empty());
  return lines_.front();
}

void StoreBuffer::pop_head() {
  SAFEDM_CHECK(!lines_.empty());
  lines_.pop_front();
  ++stats_.drained;
}

bool StoreBuffer::holds_line(u64 addr) const {
  return std::find(lines_.begin(), lines_.end(), line_of(addr)) != lines_.end();
}

}  // namespace safedm::mem
