#include "safedm/mem/store_buffer.hpp"

#include <algorithm>

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm::mem {

bool StoreBuffer::push(u64 addr) {
  const u64 line = line_of(addr);
  if (config_.coalesce) {
    const auto it = std::find(lines_.begin(), lines_.end(), line);
    if (it != lines_.end()) {
      ++stats_.pushed;
      ++stats_.coalesced;
      return true;
    }
  }
  if (full()) {
    ++stats_.full_stalls;
    return false;
  }
  lines_.push_back(line);
  ++stats_.pushed;
  return true;
}

u64 StoreBuffer::head_line() const {
  SAFEDM_CHECK(!lines_.empty());
  return lines_.front();
}

void StoreBuffer::pop_head() {
  SAFEDM_CHECK(!lines_.empty());
  lines_.pop_front();
  ++stats_.drained;
}

bool StoreBuffer::holds_line(u64 addr) const {
  return std::find(lines_.begin(), lines_.end(), line_of(addr)) != lines_.end();
}

void StoreBuffer::save_state(StateWriter& w) const {
  w.begin_section("STBF", 1);
  w.put_u32(config_.entries);
  w.put_u32(config_.line_bytes);
  w.put_u64(lines_.size());
  for (u64 line : lines_) w.put_u64(line);
  w.put_u64(stats_.pushed);
  w.put_u64(stats_.coalesced);
  w.put_u64(stats_.drained);
  w.put_u64(stats_.full_stalls);
  w.end_section();
}

void StoreBuffer::restore_state(StateReader& r) {
  r.begin_section("STBF", 1);
  if (r.get_u32() != config_.entries || r.get_u32() != config_.line_bytes)
    throw StateError("store buffer geometry mismatch");
  const u64 n = r.get_u64();
  if (n > config_.entries) throw StateError("store buffer overflow in snapshot");
  lines_.clear();
  for (u64 i = 0; i < n; ++i) lines_.push_back(r.get_u64());
  stats_.pushed = r.get_u64();
  stats_.coalesced = r.get_u64();
  stats_.drained = r.get_u64();
  stats_.full_stalls = r.get_u64();
  r.end_section();
}

}  // namespace safedm::mem
