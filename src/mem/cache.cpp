#include "safedm/mem/cache.hpp"

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm::mem {

CacheTags::CacheTags(const CacheConfig& config, std::string name)
    : config_(config), name_(std::move(name)) {
  SAFEDM_CHECK_MSG(is_pow2(config.line_bytes) && is_pow2(config.size_bytes),
                   "cache geometry must be powers of two");
  SAFEDM_CHECK_MSG(config.ways >= 1 && config.sets() >= 1, "invalid cache geometry");
  SAFEDM_CHECK_MSG(config.size_bytes % (config.ways * config.line_bytes) == 0,
                   "cache size not divisible by way*line");
  SAFEDM_CHECK(is_pow2(config.sets()));
  ways_.resize(config.sets() * config.ways);
}

u64 CacheTags::set_index(u64 addr) const {
  return (addr / config_.line_bytes) & (config_.sets() - 1);
}

u64 CacheTags::tag_of(u64 addr) const { return addr / config_.line_bytes / config_.sets(); }

CacheTags::Way* CacheTags::find(u64 addr) {
  const u64 set = set_index(addr);
  const u64 tag = tag_of(addr);
  for (unsigned w = 0; w < config_.ways; ++w) {
    Way& way = ways_[set * config_.ways + w];
    if (way.valid && way.tag == tag) return &way;
  }
  return nullptr;
}

const CacheTags::Way* CacheTags::find(u64 addr) const {
  return const_cast<CacheTags*>(this)->find(addr);
}

bool CacheTags::access(u64 addr) {
  if (Way* way = find(addr)) {
    way->lru = ++lru_clock_;
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

bool CacheTags::present(u64 addr) const { return find(addr) != nullptr; }

CacheTags::Fill CacheTags::fill(u64 addr, bool dirty) {
  SAFEDM_CHECK_MSG(!present(addr), "fill of already-present line in " << name_);
  const u64 set = set_index(addr);
  Way* victim = nullptr;
  for (unsigned w = 0; w < config_.ways; ++w) {
    Way& way = ways_[set * config_.ways + w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru < victim->lru) victim = &way;
  }
  Fill result;
  if (victim->valid) {
    result.evicted = true;
    result.victim_dirty = victim->dirty;
    // Reconstruct the victim's line address from tag + set.
    result.victim_line_addr =
        (victim->tag * config_.sets() + set) * config_.line_bytes;
    ++stats_.evictions;
    if (victim->dirty) ++stats_.writeback_evictions;
  }
  victim->valid = true;
  victim->dirty = dirty;
  victim->tag = tag_of(addr);
  victim->lru = ++lru_clock_;
  return result;
}

bool CacheTags::mark_dirty(u64 addr) {
  if (Way* way = find(addr)) {
    way->dirty = true;
    return true;
  }
  return false;
}

void CacheTags::invalidate_all() {
  for (Way& way : ways_) way = Way{};
}

void CacheTags::save_state(StateWriter& w) const {
  w.begin_section("CTAG", 1);
  w.put_u64(config_.size_bytes);
  w.put_u32(config_.ways);
  w.put_u32(config_.line_bytes);
  w.put_u64(lru_clock_);
  w.put_u64(stats_.hits);
  w.put_u64(stats_.misses);
  w.put_u64(stats_.evictions);
  w.put_u64(stats_.writeback_evictions);
  for (const Way& way : ways_) {
    w.put_u8(static_cast<u8>((way.valid ? 1 : 0) | (way.dirty ? 2 : 0)));
    w.put_u64(way.tag);
    w.put_u64(way.lru);
  }
  w.end_section();
}

void CacheTags::restore_state(StateReader& r) {
  r.begin_section("CTAG", 1);
  if (r.get_u64() != config_.size_bytes || r.get_u32() != config_.ways ||
      r.get_u32() != config_.line_bytes)
    throw StateError("cache geometry mismatch in '" + name_ + "'");
  lru_clock_ = r.get_u64();
  stats_.hits = r.get_u64();
  stats_.misses = r.get_u64();
  stats_.evictions = r.get_u64();
  stats_.writeback_evictions = r.get_u64();
  for (Way& way : ways_) {
    const u8 flags = r.get_u8();
    way.valid = (flags & 1) != 0;
    way.dirty = (flags & 2) != 0;
    way.tag = r.get_u64();
    way.lru = r.get_u64();
  }
  r.end_section();
}

}  // namespace safedm::mem
