#include "safedm/scenario/redundant.hpp"

#include <algorithm>
#include <vector>

#include "safedm/safedm/monitor.hpp"

namespace safedm::scenario {

RunOutcome& RunOutcome::max_with(const RunOutcome& other) {
  cycles = std::max(cycles, other.cycles);
  monitored_cycles = std::max(monitored_cycles, other.monitored_cycles);
  zero_stag = std::max(zero_stag, other.zero_stag);
  nodiv = std::max(nodiv, other.nodiv);
  ds_match = std::max(ds_match, other.ds_match);
  is_match = std::max(is_match, other.is_match);
  committed0 = std::max(committed0, other.committed0);
  committed1 = std::max(committed1, other.committed1);
  distance_sum = std::max(distance_sum, other.distance_sum);
  distance_min = std::min(distance_min, other.distance_min);
  distance_max = std::max(distance_max, other.distance_max);
  completed = completed || other.completed;
  return *this;
}

ThreadPool& shared_pool() {
  static ThreadPool pool(bench_thread_count());
  return pool;
}

RunOutcome run_redundant(const assembler::Program& program, const RunSpec& spec) {
  soc::SocConfig soc_config = spec.soc;
  soc_config.arbiter_bias = spec.arbiter_bias;
  // SafeDM is a pure sink, so batched delivery is safe and amortizes
  // per-cycle dispatch. SafeDE is *not* — it stalls the trail core
  // mid-flight, so its presence pins the rig to per-cycle delivery. A
  // spec that explicitly set another batch size wins.
  if (soc_config.observer_batch == 1 && !spec.safede) soc_config.observer_batch = 32;
  if (spec.safede) soc_config.observer_batch = 1;
  soc::MpSoc soc(soc_config);

  std::optional<safede::SafeDe> enforcement;
  if (spec.safede) {
    enforcement.emplace(*spec.safede, soc);
    soc.add_observer(&*enforcement);
  }

  monitor::SafeDmConfig dm_config = spec.dm;
  dm_config.start_enabled = true;
  monitor::SafeDm dm(dm_config);
  soc.add_observer(&dm);

  soc.load_redundant(program, spec.stagger_nops, spec.delayed_core);
  for (unsigned r = 0; r < soc.group_size(0); ++r)
    dm.set_prelude_ignore(r, soc.prelude_commits(soc.group_core(0, r)));

  const u64 cycles = soc.run(spec.max_cycles);
  dm.finalize();

  RunOutcome out;
  out.cycles = cycles;
  out.completed = soc.all_halted();
  const auto& c = dm.counters();
  out.monitored_cycles = c.monitored_cycles;
  out.zero_stag = c.zero_stag_cycles;
  out.nodiv = c.nodiv_cycles;
  out.ds_match = c.ds_match_cycles;
  out.is_match = c.is_match_cycles;
  out.distance_sum = c.distance_sum;
  out.distance_min = c.distance_min;
  out.distance_max = c.distance_max;
  out.committed0 = soc.core(0).stats().committed;
  out.committed1 = soc.core(1).stats().committed;
  return out;
}

RunOutcome max_over_runs(const assembler::Program& program, RunSpec spec) {
  std::vector<RunSpec> specs;
  if (spec.stagger_nops == 0) {
    for (unsigned bias = 0; bias < 2; ++bias) {
      RunSpec s = spec;
      s.arbiter_bias = bias;
      specs.push_back(s);
    }
  } else {
    for (unsigned delayed = 0; delayed < 2; ++delayed) {
      RunSpec s = spec;
      s.delayed_core = delayed;
      specs.push_back(s);
    }
  }
  std::vector<RunOutcome> outcomes(specs.size());
  shared_pool().parallel_for(specs.size(), [&](std::size_t i) {
    outcomes[i] = run_redundant(program, specs[i]);
  });
  RunOutcome best;
  for (const RunOutcome& out : outcomes) best.max_with(out);
  return best;
}

}  // namespace safedm::scenario
