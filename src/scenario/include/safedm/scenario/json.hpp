// Strict, dependency-free JSON parser for the scenario DSL.
//
// Scenario files are hand-written configuration, so the parser is a
// validator first and a reader second (the same philosophy as
// `safedm-lint`): it accepts exactly the RFC 8259 grammar — no comments,
// no trailing commas, no unquoted keys, no NaN/Infinity — and rejects
// duplicate object keys, because a silently-ignored duplicate is how a
// scenario ends up asserting something other than what its author wrote.
// Every value remembers its 1-based source line so the schema layer can
// point at the offending token, not just the file.
//
// The DOM is deliberately dumb: one variant-ish struct, object members in
// source order (deterministic iteration, no hashing). Numbers keep their
// raw text alongside the double so integer fields can be re-parsed
// exactly (a u64 cycle count survives even where a double would round).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "safedm/common/bits.hpp"

namespace safedm::scenario {

/// Thrown on malformed JSON; positions are 1-based in the source text.
struct JsonParseError {
  unsigned line = 0;
  unsigned column = 0;
  std::string message;
};

struct JsonValue {
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  // string payload; for numbers, the raw literal
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject, source order
  unsigned line = 0;  // 1-based line of the value's first character

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
};

const char* kind_name(JsonValue::Kind kind);

/// Parse one complete JSON document (throws JsonParseError). Trailing
/// whitespace is allowed; any other trailing content is an error.
JsonValue parse_json(std::string_view text);

}  // namespace safedm::scenario
