// The `safedm.scenario/v1` declarative scenario schema (ROADMAP item 1,
// loadbench-style): one JSON file composes everything the per-experiment
// C++ bench drivers used to hard-wire — workload selection, address-space
// decorrelation, SafeDE staggering enforcement, SafeDM monitor geometry,
// a fault-injection campaign spec (reusing `src/faultsim` configs), an
// inline fuzz-repro replay, and *expected-verdict assertions* over the
// results. Adding an evaluation scenario is a data PR, not a C++ PR.
//
// Parsing is strict: unknown keys, wrong types, and out-of-range values
// are each a single `file:line:`-prefixed diagnostic (ScenarioError), so
// a typo'd scenario fails loudly in CI instead of silently asserting
// nothing. The reference documentation, with a worked Table-1 example,
// lives in EXPERIMENTS.md ("Scenario DSL").
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "safedm/faultsim/campaign.hpp"
#include "safedm/safede/safede.hpp"
#include "safedm/safedm/config.hpp"
#include "safedm/scenario/json.hpp"

namespace safedm::scenario {

inline constexpr const char* kSchemaId = "safedm.scenario/v1";

/// Schema violation: `what()` is the full `file:line: message` diagnostic.
class ScenarioError : public std::runtime_error {
 public:
  ScenarioError(std::string file, unsigned line, const std::string& message)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " + message),
        file_(std::move(file)),
        line_(line) {}

  const std::string& file() const { return file_; }
  unsigned line() const { return line_; }

 private:
  std::string file_;
  unsigned line_;
};

/// `"monitor"` — SafeDM geometry and reporting (paper Section III-B).
struct MonitorSpec {
  unsigned ports = 4;   // m: monitored register-file ports, 1..6
  unsigned depth = 8;   // n: data-FIFO depth in cycles, 1..1024
  monitor::IsMode is_mode = monitor::IsMode::kPerStage;       // "per_stage" | "flat"
  monitor::CompareMode compare = monitor::CompareMode::kRaw;  // "raw" | "crc32"
  monitor::ReportMode report = monitor::ReportMode::kPollOnly;
  // "poll" | "interrupt_first" | "interrupt_threshold"
  u32 interrupt_threshold = 1;
  bool track_distance = false;

  monitor::SafeDmConfig to_config() const;
};

/// `"soc"` — platform geometry, notably the address-space decorrelation
/// sources the paper calls natural diversity (Section V-C / ablation A3).
struct SocSpec {
  bool shared_data = false;   // true = ablation: the pair shares one data segment
  u64 data_base1 = 0;         // core 1's data segment base; 0 = platform default
  u64 text_stride = 0;        // per-pair code segment spacing; 0 = platform default
  unsigned observer_batch = 0;  // monitor delivery batch; 0 = runner default
};

/// One entry of `"group.replica"`: a replica's decorrelation transforms
/// plus optional structural-heterogeneity overrides. Absent keys keep the
/// platform-default (homogeneous, non-decorrelated) replica.
struct GroupReplicaSpec {
  u64 text_offset = 0;       // image placement inside the group text window
  u64 data_offset = 0;       // added to the replica's data segment base
  u64 stack_offset = 0;      // added to the computed stack top
  u32 reg_shuffle_seed = 0;  // register-allocation shuffle; 0 = identity

  // Structural overrides (each replaces one knob of the platform core):
  std::optional<unsigned> store_buffer_entries;
  std::optional<unsigned> l1i_kb;
  std::optional<unsigned> l1d_kb;
  std::optional<unsigned> bht_entries;
  std::optional<unsigned> btb_entries;
  std::optional<unsigned> mul_latency;
  std::optional<unsigned> div_latency;

  bool structural() const {
    return store_buffer_entries || l1i_kb || l1d_kb || bht_entries || btb_entries ||
           mul_latency || div_latency;
  }
};

/// `"group"` — N-replica redundancy-group topology and the monitor's
/// verdict policy. Absent means the paper's homogeneous 2-replica pair.
struct GroupSection {
  unsigned replicas = 2;  // 2..8
  monitor::VerdictPolicy policy = monitor::VerdictPolicy::kAnyPair;
  // "any_pair" | "all_pairs" | "quorum"
  unsigned quorum_k = 1;  // for "quorum": matched pairs needed, 1..C(n,2)
  std::vector<GroupReplicaSpec> replica;  // at most `replicas` entries;
                                          // missing tail entries are default
};

/// `"run.safede"` — SafeDE-style staggering enforcement (presence enables it).
struct SafeDeSpec {
  unsigned head_core = 0;    // 0 | 1
  i64 min_staggering = 100;  // committed-instruction distance to enforce

  safede::SafeDeConfig to_config() const;
};

/// `"run"` — one redundant execution of a registry workload.
struct RunSection {
  std::string workload;      // required; must name a registry benchmark
  unsigned scale = 1;        // workload input scale, 1..1024
  unsigned stagger_nops = 0;     // nop prelude on the delayed core
  unsigned delayed_core = 1;     // which core gets the prelude, 0 | 1
  u64 max_cycles = 20'000'000;   // watchdog budget
  bool sweep = true;         // max over platform variants (bench/table1 style)
  std::optional<SafeDeSpec> safede;
};

/// `"faults"` — fault-injection campaign over the run's workload,
/// lowered onto `faultsim::EngineConfig` (paper Section III-B premise).
struct FaultSection {
  unsigned samples_per_class = 4;         // injection cycles per verdict class
  std::vector<u8> registers{6, 9, 18};    // each 1..31 (x0 is not injectable)
  std::vector<unsigned> bits{2, 17, 40};  // each 0..63
  u64 seed = 1;
  bool single_fault = true;               // also run the single-fault control
  faultsim::InjectionEngine engine = faultsim::InjectionEngine::kCheckpoint;
  faultsim::ShardSpec shard{};            // "shard": {"index": i, "count": n}
};

/// `"fuzz"` — replay one inline `safedm-fuzz/v1` program through the full
/// differential oracle stack (how minimized repros from `tests/corpus/`
/// become scenarios; see TESTING.md "Scenario corpus").
struct FuzzSection {
  std::string program;       // the serialized program, lines joined by \n
  u64 max_cycles = 2'000'000;
};

/// Inclusive bound over a counter; absent sides are unchecked.
struct Bound {
  std::optional<u64> min;
  std::optional<u64> max;

  bool trivial() const { return !min && !max; }
};

/// `"expect"` — the assertions that make a scenario a test.
struct ExpectSection {
  std::optional<bool> completed;       // default: a run must halt in budget
  // "counters": SafeDM counter bounds after the run.
  Bound zero_stag;
  Bound nodiv;
  Bound ds_match;
  Bound is_match;
  Bound monitored;
  // Diversity-magnitude bounds (require "monitor.track_distance": true).
  // distance_min is the run's smallest per-cycle group distance — for an
  // N-replica group, the minimum *pairwise* distance, i.e. the weakest
  // link of the diversity matrix.
  Bound distance_min;
  Bound distance_max;
  std::optional<bool> nodiv_le_zero_stag;  // the paper's shape invariant
  // "faults": CCF-classification assertions over the campaign report.
  std::optional<u64> single_fault_ccf_max;   // usually 0: redundancy holds
  std::optional<bool> nodiv_ccf_ge_diverse;  // Section III-B ordering claim
  std::optional<double> ccf_rate_max;        // over all identical-fault sites
  std::optional<bool> latency_sane;          // detection-latency histogram sanity
};

struct Scenario {
  std::string file;  // source path, used in diagnostics and reports
  std::string name;
  std::string description;
  MonitorSpec monitor;
  SocSpec soc;
  std::optional<GroupSection> group;
  std::optional<RunSection> run;
  std::optional<FaultSection> faults;  // requires `run` (its workload)
  std::optional<FuzzSection> fuzz;
  ExpectSection expect;
};

/// Lower a parsed JSON document into a validated Scenario. `file` is only
/// used to prefix diagnostics. Throws ScenarioError on the first
/// violation (one diagnostic per invocation, lint-style).
Scenario parse_scenario(const JsonValue& root, const std::string& file);

/// Read + parse + validate one scenario file. JSON syntax errors are
/// reported through the same ScenarioError channel as schema errors.
Scenario load_scenario_file(const std::string& path);

}  // namespace safedm::scenario
