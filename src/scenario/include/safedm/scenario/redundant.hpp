// Shared redundant-execution harness: builds the MPSoC + SafeDM rig, runs
// a workload redundantly, and returns the monitor's counters. Mirrors the
// paper's methodology (Section V-B): synchronized start, optional nop
// prelude on one core, monitor armed once both cores execute the program,
// max over repeated runs.
//
// Lifted out of bench/bench_util.hpp so the scenario runner and the bench
// drivers execute the *same* code path — a `scenarios/table1_*.json`
// replay is equivalent to the bench/table1 cell by construction, and the
// equivalence test (tests/scenario/runner_equiv_test.cpp) pins it.
//
// Every MpSoc run is fully independent, so the repeated-run and sweep
// layers fan out over a process-wide ThreadPool. SAFEDM_BENCH_THREADS
// overrides the worker count (default: hardware concurrency; 1 restores
// the historical serial behavior for debugging).
#pragma once

#include <optional>

#include "safedm/assembler/assembler.hpp"
#include "safedm/common/thread_pool.hpp"
#include "safedm/safede/safede.hpp"
#include "safedm/safedm/config.hpp"
#include "safedm/soc/soc.hpp"

namespace safedm::scenario {

struct RunOutcome {
  u64 cycles = 0;            // SoC cycles until both cores halted
  u64 monitored_cycles = 0;
  u64 zero_stag = 0;         // cycles with instruction diff == 0
  u64 nodiv = 0;             // cycles with neither data nor instr diversity
  u64 ds_match = 0;
  u64 is_match = 0;
  u64 committed0 = 0;
  u64 committed1 = 0;
  // Diversity-magnitude statistics (dm.track_distance; zero/~0 otherwise).
  // For an N-replica group these describe the per-cycle *minimum pairwise*
  // distance — the weakest link of the diversity matrix.
  u64 distance_sum = 0;
  u64 distance_min = ~u64{0};
  u64 distance_max = 0;
  bool completed = false;

  /// Field-wise max aggregation (the paper reports the highest values
  /// found over repeated runs). distance_min, being a min-statistic, takes
  /// the min — the aggregate keeps the worst case of every field.
  RunOutcome& max_with(const RunOutcome& other);
};

struct RunSpec {
  unsigned scale = 1;
  unsigned stagger_nops = 0;
  unsigned delayed_core = 1;
  unsigned arbiter_bias = 0;
  u64 max_cycles = 20'000'000;
  monitor::SafeDmConfig dm{};
  soc::SocConfig soc{};
  /// When set, a SafeDE enforcement stage rides along (scenario DSL's
  /// staggering policy). SafeDE intervenes — it stalls the trail core —
  /// so the run stays on per-cycle observer delivery.
  std::optional<safede::SafeDeConfig> safede{};
};

/// Process-wide simulation pool (sized by SAFEDM_BENCH_THREADS / hardware).
ThreadPool& shared_pool();

RunOutcome run_redundant(const assembler::Program& program, const RunSpec& spec);

/// The paper reports the max over repeated runs ("we selected the highest
/// values found"). Runs vary who starts first and the arbiter phase; the
/// variants are independent simulations and execute on the shared pool.
RunOutcome max_over_runs(const assembler::Program& program, RunSpec spec);

}  // namespace safedm::scenario
