// Scenario execution: lower a validated Scenario onto the shared
// redundant-run harness, the fault-injection campaign engine, and the
// differential fuzz oracle, then evaluate the `expect` assertions into a
// flat pass/fail check list. The bench/scenario driver (and the
// `scenario_smoke` CI gate) is a thin CLI around this.
#pragma once

#include <string>
#include <vector>

#include "safedm/faultsim/campaign.hpp"
#include "safedm/fuzz/oracle.hpp"
#include "safedm/scenario/redundant.hpp"
#include "safedm/scenario/scenario.hpp"

namespace safedm::scenario {

/// One evaluated assertion. `name` is the schema path of the expectation
/// (e.g. "expect.counters.nodiv"); `detail` explains a failure in terms
/// of observed vs expected values.
struct CheckResult {
  std::string name;
  bool pass = true;
  std::string detail;
};

struct ScenarioResult {
  std::string name;
  std::string file;

  bool ran_redundant = false;
  RunOutcome outcome{};  // valid when ran_redundant

  bool ran_faults = false;
  faultsim::EngineReport fault_report{};  // valid when ran_faults

  bool ran_fuzz = false;
  fuzz::OracleVerdict fuzz_verdict = fuzz::OracleVerdict::kPass;
  std::string fuzz_detail;

  std::vector<CheckResult> checks;

  bool passed() const {
    for (const CheckResult& c : checks)
      if (!c.pass) return false;
    return true;
  }
};

/// Build the soc/monitor configs a scenario's `run` section describes.
/// Exposed so the equivalence test can drive the harness directly with
/// the exact spec the runner derives.
RunSpec build_run_spec(const Scenario& scenario);

/// Execute every section of the scenario and evaluate its assertions.
/// Simulation-level failures (e.g. an unknown workload slipping past the
/// schema) surface as CheckError from the layers below.
ScenarioResult run_scenario(const Scenario& scenario);

}  // namespace safedm::scenario
