#include "safedm/scenario/runner.hpp"

#include <string>

#include "safedm/fuzz/generator.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::scenario {

namespace {

std::string u64_str(u64 v) { return std::to_string(v); }

void check_bound(std::vector<CheckResult>& checks, const char* name, const Bound& bound,
                 u64 observed) {
  if (bound.trivial()) return;
  CheckResult check{name, true, {}};
  const u64 lo = bound.min.value_or(0);
  const u64 hi = bound.max.value_or(~u64{0});
  if (observed < lo || observed > hi) {
    check.pass = false;
    check.detail = "observed " + u64_str(observed) + ", expected [" +
                   (bound.min ? u64_str(lo) : std::string("-inf")) + ", " +
                   (bound.max ? u64_str(hi) : std::string("+inf")) + "]";
  }
  checks.push_back(std::move(check));
}

/// Detection-latency histogram sanity: the campaign records one latency
/// sample for exactly the detectable outcomes (detected / crashed /
/// hung), so each class histogram's population must equal that count.
bool latency_consistent(const faultsim::ClassAggregate& agg, std::string& detail) {
  const u64 detectable = agg.count(faultsim::Outcome::kDetected) +
                         agg.count(faultsim::Outcome::kCrashed) +
                         agg.count(faultsim::Outcome::kHung);
  if (agg.latency.total_samples() != detectable) {
    detail = "histogram holds " + u64_str(agg.latency.total_samples()) +
             " samples for " + u64_str(detectable) + " detectable outcomes";
    return false;
  }
  return true;
}

void evaluate_fault_checks(const Scenario& scenario, const faultsim::EngineReport& report,
                           std::vector<CheckResult>& checks) {
  const ExpectSection& expect = scenario.expect;
  if (expect.single_fault_ccf_max) {
    u64 single_ccf = 0;
    for (const auto& wr : report.workloads)
      single_ccf += wr.single.count(faultsim::Outcome::kCcf);
    CheckResult check{"expect.faults.single_fault_ccf_max", true, {}};
    if (single_ccf > *expect.single_fault_ccf_max) {
      check.pass = false;
      check.detail = u64_str(single_ccf) + " single-fault CCFs, expected <= " +
                     u64_str(*expect.single_fault_ccf_max);
    }
    checks.push_back(std::move(check));
  }
  if (expect.nodiv_ccf_ge_diverse && *expect.nodiv_ccf_ge_diverse) {
    CheckResult check{"expect.faults.nodiv_ccf_ge_diverse", true, {}};
    for (const auto& wr : report.workloads) {
      if (wr.nodiv_pool == 0) {
        // An empty no-diversity pool cannot exercise the ordering claim;
        // treat it as a failed expectation rather than a vacuous pass
        // (same policy as the faultsim smoke gate).
        check.pass = false;
        check.detail = wr.name + ": no no-diversity cycles to sample";
        break;
      }
      if (wr.identical[1].ccf_rate() < wr.identical[0].ccf_rate()) {
        check.pass = false;
        check.detail = wr.name + ": no-div CCF rate " +
                       std::to_string(wr.identical[1].ccf_rate()) + " < diverse rate " +
                       std::to_string(wr.identical[0].ccf_rate());
        break;
      }
    }
    checks.push_back(std::move(check));
  }
  if (expect.ccf_rate_max) {
    u64 ccf = 0, total = 0;
    for (const auto& wr : report.workloads) {
      for (const auto& agg : wr.identical) {
        ccf += agg.count(faultsim::Outcome::kCcf);
        total += agg.total();
      }
    }
    const double rate = total ? static_cast<double>(ccf) / static_cast<double>(total) : 0.0;
    CheckResult check{"expect.faults.ccf_rate_max", true, {}};
    if (rate > *expect.ccf_rate_max) {
      check.pass = false;
      check.detail = "identical-fault CCF rate " + std::to_string(rate) + " > " +
                     std::to_string(*expect.ccf_rate_max);
    }
    checks.push_back(std::move(check));
  }
  if (expect.latency_sane && *expect.latency_sane) {
    CheckResult check{"expect.faults.latency_sane", true, {}};
    for (const auto& wr : report.workloads) {
      std::string detail;
      if (!latency_consistent(wr.identical[0], detail) ||
          !latency_consistent(wr.identical[1], detail) ||
          !latency_consistent(wr.single, detail)) {
        check.pass = false;
        check.detail = wr.name + ": " + detail;
        break;
      }
    }
    checks.push_back(std::move(check));
  }
}

}  // namespace

RunSpec build_run_spec(const Scenario& scenario) {
  RunSpec spec;
  const RunSection& run = *scenario.run;
  spec.scale = run.scale;
  spec.stagger_nops = run.stagger_nops;
  spec.delayed_core = run.delayed_core;
  spec.max_cycles = run.max_cycles;
  spec.dm = scenario.monitor.to_config();
  spec.soc.shared_data = scenario.soc.shared_data;
  if (scenario.soc.data_base1 != 0) spec.soc.data_base1 = scenario.soc.data_base1;
  if (scenario.soc.text_stride != 0) spec.soc.text_stride = scenario.soc.text_stride;
  if (scenario.soc.observer_batch != 0) spec.soc.observer_batch = scenario.soc.observer_batch;
  if (run.safede) spec.safede = run.safede->to_config();
  if (scenario.group) {
    const GroupSection& group = *scenario.group;
    spec.dm.num_replicas = group.replicas;
    spec.dm.policy = group.policy;
    spec.dm.quorum_k = group.quorum_k;
    soc::GroupSpec gs;
    for (unsigned r = 0; r < group.replicas; ++r) {
      soc::ReplicaSpec rep;
      if (r < group.replica.size()) {
        const GroupReplicaSpec& s = group.replica[r];
        rep.text_offset = s.text_offset;
        rep.data_offset = s.data_offset;
        rep.stack_offset = s.stack_offset;
        rep.reg_shuffle_seed = s.reg_shuffle_seed;
        if (s.structural()) {
          core::CoreConfig cc = spec.soc.core;
          if (s.store_buffer_entries) cc.store_buffer.entries = *s.store_buffer_entries;
          if (s.l1i_kb) cc.l1i.size_bytes = *s.l1i_kb * 1024;
          if (s.l1d_kb) cc.l1d.size_bytes = *s.l1d_kb * 1024;
          if (s.bht_entries) cc.predictor.bht_entries = *s.bht_entries;
          if (s.btb_entries) cc.predictor.btb_entries = *s.btb_entries;
          if (s.mul_latency) cc.mul_latency = *s.mul_latency;
          if (s.div_latency) cc.div_latency = *s.div_latency;
          rep.core = cc;
        }
      }
      gs.replicas.push_back(rep);
    }
    spec.soc.groups = {gs};
  }
  return spec;
}

ScenarioResult run_scenario(const Scenario& scenario) {
  ScenarioResult result;
  result.name = scenario.name;
  result.file = scenario.file;
  const ExpectSection& expect = scenario.expect;

  if (scenario.run) {
    const RunSection& run = *scenario.run;
    const assembler::Program program = workloads::build(run.workload, run.scale);
    const RunSpec spec = build_run_spec(scenario);
    result.outcome = run.sweep ? max_over_runs(program, spec) : run_redundant(program, spec);
    result.ran_redundant = true;

    // A run is expected to halt within budget unless the scenario says
    // otherwise (a watchdog-timeout scenario sets completed: false).
    const bool want_completed = expect.completed.value_or(true);
    CheckResult completed{"expect.completed", true, {}};
    if (result.outcome.completed != want_completed) {
      completed.pass = false;
      completed.detail = result.outcome.completed
                             ? "run completed but completed: false was expected"
                             : "run did not halt within " + u64_str(run.max_cycles) + " cycles";
    }
    result.checks.push_back(std::move(completed));

    check_bound(result.checks, "expect.counters.zero_stag", expect.zero_stag,
                result.outcome.zero_stag);
    check_bound(result.checks, "expect.counters.nodiv", expect.nodiv, result.outcome.nodiv);
    check_bound(result.checks, "expect.counters.ds_match", expect.ds_match,
                result.outcome.ds_match);
    check_bound(result.checks, "expect.counters.is_match", expect.is_match,
                result.outcome.is_match);
    check_bound(result.checks, "expect.counters.monitored", expect.monitored,
                result.outcome.monitored_cycles);
    check_bound(result.checks, "expect.counters.distance_min", expect.distance_min,
                result.outcome.distance_min);
    check_bound(result.checks, "expect.counters.distance_max", expect.distance_max,
                result.outcome.distance_max);
    if (expect.nodiv_le_zero_stag && *expect.nodiv_le_zero_stag) {
      CheckResult shape{"expect.counters.nodiv_le_zero_stag", true, {}};
      if (result.outcome.nodiv > result.outcome.zero_stag) {
        shape.pass = false;
        shape.detail = "nodiv " + u64_str(result.outcome.nodiv) + " > zero_stag " +
                       u64_str(result.outcome.zero_stag);
      }
      result.checks.push_back(std::move(shape));
    }
  }

  if (scenario.faults) {
    const FaultSection& faults = *scenario.faults;
    faultsim::EngineConfig config;
    config.workloads = {scenario.run->workload};
    config.scale = scenario.run->scale;
    config.samples_per_class = faults.samples_per_class;
    config.registers = faults.registers;
    config.bits = faults.bits;
    config.seed = faults.seed;
    config.single_fault = faults.single_fault;
    config.engine = faults.engine;
    config.shard = faults.shard;
    config.dm = scenario.monitor.to_config();
    config.threads = shared_pool().size();
    result.fault_report = faultsim::run_engine(config);
    result.ran_faults = true;
    evaluate_fault_checks(scenario, result.fault_report, result.checks);
  }

  if (scenario.fuzz) {
    fuzz::OracleConfig config;
    config.max_cycles = scenario.fuzz->max_cycles;
    const fuzz::FuzzProgram program = fuzz::deserialize(scenario.fuzz->program);
    const fuzz::OracleResult oracle = fuzz::run_differential(program, config);
    result.ran_fuzz = true;
    result.fuzz_verdict = oracle.verdict;
    result.fuzz_detail = oracle.detail;
    CheckResult check{"fuzz.oracle", oracle.ok(), {}};
    if (!oracle.ok())
      check.detail = std::string(fuzz::verdict_name(oracle.verdict)) + ": " + oracle.detail;
    result.checks.push_back(std::move(check));
  }

  return result;
}

}  // namespace safedm::scenario
