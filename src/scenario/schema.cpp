// Schema lowering/validation for `safedm.scenario/v1` (see scenario.hpp).
//
// Every accessor below reports through Ctx::fail, which throws a
// ScenarioError carrying the offending value's source line — the contract
// the negative-path tests pin is "one violation, one `file:line:`
// diagnostic".
#include <fstream>
#include <sstream>

#include "safedm/common/check.hpp"
#include "safedm/faultsim/shard.hpp"
#include "safedm/fuzz/generator.hpp"
#include "safedm/scenario/scenario.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::scenario {

monitor::SafeDmConfig MonitorSpec::to_config() const {
  monitor::SafeDmConfig config;
  config.num_ports = ports;
  config.data_fifo_depth = depth;
  config.is_mode = is_mode;
  config.compare = compare;
  config.report = report;
  config.interrupt_threshold = interrupt_threshold;
  config.track_distance = track_distance;
  return config;
}

safede::SafeDeConfig SafeDeSpec::to_config() const {
  safede::SafeDeConfig config;
  config.head_core = head_core;
  config.min_staggering = min_staggering;
  config.enabled = true;
  return config;
}

namespace {

struct Ctx {
  const std::string& file;

  [[noreturn]] void fail(const JsonValue& at, const std::string& message) const {
    throw ScenarioError(file, at.line, message);
  }

  const JsonValue& object(const JsonValue& v, const char* what) const {
    if (!v.is_object())
      fail(v, std::string(what) + " must be an object, got " + kind_name(v.kind));
    return v;
  }

  /// Reject members outside `allowed` — a typo'd key must not silently
  /// become an assertion that never runs.
  void check_keys(const JsonValue& obj, const char* what,
                  std::initializer_list<std::string_view> allowed) const {
    for (const auto& [key, value] : obj.members) {
      bool known = false;
      for (std::string_view a : allowed) known = known || key == a;
      if (!known) fail(value, "unknown key \"" + key + "\" in " + what);
    }
  }

  bool get_bool(const JsonValue& v, const char* what) const {
    if (!v.is_bool())
      fail(v, std::string(what) + " must be a bool, got " + kind_name(v.kind));
    return v.boolean;
  }

  std::string get_string(const JsonValue& v, const char* what) const {
    if (!v.is_string())
      fail(v, std::string(what) + " must be a string, got " + kind_name(v.kind));
    return v.text;
  }

  u64 get_u64(const JsonValue& v, const char* what, u64 lo, u64 hi) const {
    if (!v.is_number())
      fail(v, std::string(what) + " must be an integer, got " + kind_name(v.kind));
    // The raw literal decides integerness: 1e3 and 2.0 are rejected even
    // though they hold integral doubles, because exact u64 round-trip is
    // part of the contract (cycle counts exceed 2^53).
    if (v.text.find_first_of(".eE-") != std::string::npos)
      fail(v, std::string(what) + " must be a non-negative integer, got " + v.text);
    u64 value = 0;
    for (const char c : v.text) {
      const u64 digit = static_cast<u64>(c - '0');
      if (value > (~u64{0} - digit) / 10) fail(v, std::string(what) + " overflows u64");
      value = value * 10 + digit;
    }
    if (value < lo || value > hi)
      fail(v, std::string(what) + " must be in [" + std::to_string(lo) + ", " +
                 std::to_string(hi) + "], got " + v.text);
    return value;
  }

  unsigned get_unsigned(const JsonValue& v, const char* what, u64 lo, u64 hi) const {
    return static_cast<unsigned>(get_u64(v, what, lo, hi));
  }

  double get_fraction(const JsonValue& v, const char* what) const {
    if (!v.is_number())
      fail(v, std::string(what) + " must be a number, got " + kind_name(v.kind));
    if (v.number < 0.0 || v.number > 1.0)
      fail(v, std::string(what) + " must be in [0, 1], got " + v.text);
    return v.number;
  }
};

bool known_workload(const std::string& name) {
  for (const auto& info : workloads::registry())
    if (info.name == name) return true;
  for (const auto& info : workloads::registry_extended())
    if (info.name == name) return true;
  return false;
}

MonitorSpec parse_monitor(const Ctx& ctx, const JsonValue& v) {
  ctx.object(v, "\"monitor\"");
  ctx.check_keys(v, "\"monitor\"",
                 {"ports", "depth", "is_mode", "compare", "report", "interrupt_threshold",
                  "track_distance"});
  MonitorSpec spec;
  if (const JsonValue* f = v.find("ports"))
    spec.ports = ctx.get_unsigned(*f, "\"monitor.ports\"", 1, 6);
  if (const JsonValue* f = v.find("depth"))
    spec.depth = ctx.get_unsigned(*f, "\"monitor.depth\"", 1, 1024);
  if (const JsonValue* f = v.find("is_mode")) {
    const std::string mode = ctx.get_string(*f, "\"monitor.is_mode\"");
    if (mode == "per_stage") spec.is_mode = monitor::IsMode::kPerStage;
    else if (mode == "flat") spec.is_mode = monitor::IsMode::kFlatList;
    else ctx.fail(*f, "\"monitor.is_mode\" must be \"per_stage\" or \"flat\", got \"" + mode + "\"");
  }
  if (const JsonValue* f = v.find("compare")) {
    const std::string mode = ctx.get_string(*f, "\"monitor.compare\"");
    if (mode == "raw") spec.compare = monitor::CompareMode::kRaw;
    else if (mode == "crc32") spec.compare = monitor::CompareMode::kCrc32;
    else ctx.fail(*f, "\"monitor.compare\" must be \"raw\" or \"crc32\", got \"" + mode + "\"");
  }
  if (const JsonValue* f = v.find("report")) {
    const std::string mode = ctx.get_string(*f, "\"monitor.report\"");
    if (mode == "poll") spec.report = monitor::ReportMode::kPollOnly;
    else if (mode == "interrupt_first") spec.report = monitor::ReportMode::kInterruptFirst;
    else if (mode == "interrupt_threshold")
      spec.report = monitor::ReportMode::kInterruptThreshold;
    else
      ctx.fail(*f, "\"monitor.report\" must be \"poll\", \"interrupt_first\", or "
                   "\"interrupt_threshold\", got \"" + mode + "\"");
  }
  if (const JsonValue* f = v.find("interrupt_threshold"))
    spec.interrupt_threshold =
        static_cast<u32>(ctx.get_u64(*f, "\"monitor.interrupt_threshold\"", 1, ~u32{0}));
  if (const JsonValue* f = v.find("track_distance"))
    spec.track_distance = ctx.get_bool(*f, "\"monitor.track_distance\"");
  return spec;
}

SocSpec parse_soc(const Ctx& ctx, const JsonValue& v) {
  ctx.object(v, "\"soc\"");
  ctx.check_keys(v, "\"soc\"", {"shared_data", "data_base1", "text_stride", "observer_batch"});
  SocSpec spec;
  if (const JsonValue* f = v.find("shared_data"))
    spec.shared_data = ctx.get_bool(*f, "\"soc.shared_data\"");
  if (const JsonValue* f = v.find("data_base1")) {
    spec.data_base1 = ctx.get_u64(*f, "\"soc.data_base1\"", 0x1000, 0x4000'0000);
    if (spec.data_base1 % 0x1000 != 0)
      ctx.fail(*f, "\"soc.data_base1\" must be 4 KiB aligned");
  }
  if (const JsonValue* f = v.find("text_stride")) {
    spec.text_stride = ctx.get_u64(*f, "\"soc.text_stride\"", 0x1000, 0x4000'0000);
    if (spec.text_stride % 0x1000 != 0)
      ctx.fail(*f, "\"soc.text_stride\" must be 4 KiB aligned");
  }
  if (const JsonValue* f = v.find("observer_batch"))
    spec.observer_batch = ctx.get_unsigned(*f, "\"soc.observer_batch\"", 1, 65536);
  return spec;
}

GroupReplicaSpec parse_group_replica(const Ctx& ctx, const JsonValue& v, unsigned index,
                                     const SocSpec& soc) {
  const std::string tag = "\"group.replica[" + std::to_string(index) + "]";
  ctx.object(v, (tag + "\"").c_str());
  ctx.check_keys(v, (tag + "\"").c_str(),
                 {"text_offset", "data_offset", "stack_offset", "reg_shuffle_seed",
                  "store_buffer_entries", "l1i_kb", "l1d_kb", "bht_entries", "btb_entries",
                  "mul_latency", "div_latency"});
  GroupReplicaSpec spec;
  // Decorrelation offsets must fit the layout the SoC will actually build;
  // validating here turns a CheckError at construction into a file:line
  // diagnostic at the offending value.
  const soc::SocConfig defaults;
  const u64 text_stride = soc.text_stride != 0 ? soc.text_stride : defaults.text_stride;
  const u64 data_base1 = soc.data_base1 != 0 ? soc.data_base1 : defaults.data_base1;
  const u64 data_stride = data_base1 - defaults.data_base0;
  if (const JsonValue* f = v.find("text_offset")) {
    spec.text_offset = ctx.get_u64(*f, (tag + ".text_offset\"").c_str(), 0, ~u64{0});
    if (spec.text_offset % 4 != 0)
      ctx.fail(*f, tag + ".text_offset\" must be 4-byte aligned");
    if (spec.text_offset >= text_stride)
      ctx.fail(*f, tag + ".text_offset\" " + std::to_string(spec.text_offset) +
                       " overflows the text stride " + std::to_string(text_stride));
  }
  if (const JsonValue* f = v.find("data_offset")) {
    spec.data_offset = ctx.get_u64(*f, (tag + ".data_offset\"").c_str(), 0, ~u64{0});
    if (spec.data_offset % 16 != 0)
      ctx.fail(*f, tag + ".data_offset\" must be 16-byte aligned");
    if (spec.data_offset >= data_stride)
      ctx.fail(*f, tag + ".data_offset\" " + std::to_string(spec.data_offset) +
                       " overflows the data stride " + std::to_string(data_stride));
  }
  if (const JsonValue* f = v.find("stack_offset")) {
    spec.stack_offset = ctx.get_u64(*f, (tag + ".stack_offset\"").c_str(), 0, 65536);
    if (spec.stack_offset % 16 != 0)
      ctx.fail(*f, tag + ".stack_offset\" must be 16-byte aligned");
  }
  if (const JsonValue* f = v.find("reg_shuffle_seed"))
    spec.reg_shuffle_seed =
        static_cast<u32>(ctx.get_u64(*f, (tag + ".reg_shuffle_seed\"").c_str(), 0, ~u32{0}));
  const auto pow2 = [&](const JsonValue& f, unsigned value, const std::string& what) {
    if ((value & (value - 1)) != 0) ctx.fail(f, what + " must be a power of two");
  };
  if (const JsonValue* f = v.find("store_buffer_entries"))
    spec.store_buffer_entries =
        ctx.get_unsigned(*f, (tag + ".store_buffer_entries\"").c_str(), 1, 64);
  if (const JsonValue* f = v.find("l1i_kb")) {
    spec.l1i_kb = ctx.get_unsigned(*f, (tag + ".l1i_kb\"").c_str(), 1, 256);
    pow2(*f, *spec.l1i_kb, tag + ".l1i_kb\"");
  }
  if (const JsonValue* f = v.find("l1d_kb")) {
    spec.l1d_kb = ctx.get_unsigned(*f, (tag + ".l1d_kb\"").c_str(), 1, 256);
    pow2(*f, *spec.l1d_kb, tag + ".l1d_kb\"");
  }
  if (const JsonValue* f = v.find("bht_entries")) {
    spec.bht_entries = ctx.get_unsigned(*f, (tag + ".bht_entries\"").c_str(), 1, 65536);
    pow2(*f, *spec.bht_entries, tag + ".bht_entries\"");
  }
  if (const JsonValue* f = v.find("btb_entries")) {
    spec.btb_entries = ctx.get_unsigned(*f, (tag + ".btb_entries\"").c_str(), 1, 4096);
    pow2(*f, *spec.btb_entries, tag + ".btb_entries\"");
  }
  if (const JsonValue* f = v.find("mul_latency"))
    spec.mul_latency = ctx.get_unsigned(*f, (tag + ".mul_latency\"").c_str(), 1, 200);
  if (const JsonValue* f = v.find("div_latency"))
    spec.div_latency = ctx.get_unsigned(*f, (tag + ".div_latency\"").c_str(), 1, 200);
  return spec;
}

GroupSection parse_group(const Ctx& ctx, const JsonValue& v, const SocSpec& soc) {
  ctx.object(v, "\"group\"");
  ctx.check_keys(v, "\"group\"", {"replicas", "policy", "quorum_k", "replica"});
  GroupSection group;
  if (const JsonValue* f = v.find("replicas"))
    group.replicas = ctx.get_unsigned(*f, "\"group.replicas\"", 2, 8);
  const unsigned n_pairs = group.replicas * (group.replicas - 1) / 2;
  if (const JsonValue* f = v.find("policy")) {
    const std::string policy = ctx.get_string(*f, "\"group.policy\"");
    if (policy == "any_pair") group.policy = monitor::VerdictPolicy::kAnyPair;
    else if (policy == "all_pairs") group.policy = monitor::VerdictPolicy::kAllPairs;
    else if (policy == "quorum") group.policy = monitor::VerdictPolicy::kQuorum;
    else
      ctx.fail(*f, "\"group.policy\" must be \"any_pair\", \"all_pairs\", or \"quorum\", "
                   "got \"" + policy + "\"");
  }
  if (const JsonValue* f = v.find("quorum_k")) {
    if (group.policy != monitor::VerdictPolicy::kQuorum)
      ctx.fail(*f, "\"group.quorum_k\" requires \"group.policy\": \"quorum\"");
    group.quorum_k = ctx.get_unsigned(*f, "\"group.quorum_k\"", 1, n_pairs);
  }
  if (const JsonValue* f = v.find("replica")) {
    if (!f->is_array())
      ctx.fail(*f, "\"group.replica\" must be an array of replica objects");
    if (f->items.size() > group.replicas)
      ctx.fail(*f, "\"group.replica\" has " + std::to_string(f->items.size()) +
                       " entries for " + std::to_string(group.replicas) + " replicas");
    for (unsigned i = 0; i < f->items.size(); ++i)
      group.replica.push_back(parse_group_replica(ctx, f->items[i], i, soc));
  }
  return group;
}

RunSection parse_run(const Ctx& ctx, const JsonValue& v) {
  ctx.object(v, "\"run\"");
  ctx.check_keys(v, "\"run\"", {"workload", "scale", "stagger_nops", "delayed_core",
                                "max_cycles", "sweep", "safede"});
  RunSection run;
  const JsonValue* wl = v.find("workload");
  if (wl == nullptr) ctx.fail(v, "\"run\" is missing required key \"workload\"");
  run.workload = ctx.get_string(*wl, "\"run.workload\"");
  if (!known_workload(run.workload))
    ctx.fail(*wl, "\"run.workload\": \"" + run.workload + "\" is not a registry benchmark");
  if (const JsonValue* f = v.find("scale"))
    run.scale = ctx.get_unsigned(*f, "\"run.scale\"", 1, 1024);
  if (const JsonValue* f = v.find("stagger_nops"))
    run.stagger_nops = ctx.get_unsigned(*f, "\"run.stagger_nops\"", 0, 1'000'000);
  if (const JsonValue* f = v.find("delayed_core"))
    // Upper bound is the group size; the cross-check against the actual
    // replica count happens in parse_scenario once both sections exist.
    run.delayed_core = ctx.get_unsigned(*f, "\"run.delayed_core\"", 0, 7);
  if (const JsonValue* f = v.find("max_cycles"))
    run.max_cycles = ctx.get_u64(*f, "\"run.max_cycles\"", 1, ~u64{0});
  if (const JsonValue* f = v.find("sweep")) run.sweep = ctx.get_bool(*f, "\"run.sweep\"");
  if (const JsonValue* f = v.find("safede")) {
    ctx.object(*f, "\"run.safede\"");
    ctx.check_keys(*f, "\"run.safede\"", {"head_core", "min_staggering"});
    SafeDeSpec de;
    if (const JsonValue* g = f->find("head_core"))
      de.head_core = ctx.get_unsigned(*g, "\"run.safede.head_core\"", 0, 1);
    if (const JsonValue* g = f->find("min_staggering"))
      de.min_staggering =
          static_cast<i64>(ctx.get_u64(*g, "\"run.safede.min_staggering\"", 0, 1'000'000'000));
    run.safede = de;
  }
  return run;
}

FaultSection parse_faults(const Ctx& ctx, const JsonValue& v) {
  ctx.object(v, "\"faults\"");
  ctx.check_keys(v, "\"faults\"",
                 {"samples_per_class", "registers", "bits", "seed", "single_fault", "engine",
                  "shard"});
  FaultSection faults;
  if (const JsonValue* f = v.find("samples_per_class"))
    faults.samples_per_class = ctx.get_unsigned(*f, "\"faults.samples_per_class\"", 1, 100'000);
  if (const JsonValue* f = v.find("registers")) {
    if (!f->is_array() || f->items.empty())
      ctx.fail(*f, "\"faults.registers\" must be a non-empty array of integers");
    faults.registers.clear();
    for (const JsonValue& item : f->items)
      // x0 is hardwired zero (not injectable) and the register file has 32
      // entries — the same bounds the faultsim injectors enforce.
      faults.registers.push_back(
          static_cast<u8>(ctx.get_u64(item, "\"faults.registers\" entry", 1, 31)));
  }
  if (const JsonValue* f = v.find("bits")) {
    if (!f->is_array() || f->items.empty())
      ctx.fail(*f, "\"faults.bits\" must be a non-empty array of integers");
    faults.bits.clear();
    for (const JsonValue& item : f->items)
      faults.bits.push_back(ctx.get_unsigned(item, "\"faults.bits\" entry", 0, 63));
  }
  if (const JsonValue* f = v.find("seed"))
    faults.seed = ctx.get_u64(*f, "\"faults.seed\"", 0, ~u64{0});
  if (const JsonValue* f = v.find("single_fault"))
    faults.single_fault = ctx.get_bool(*f, "\"faults.single_fault\"");
  if (const JsonValue* f = v.find("engine")) {
    const std::string engine = ctx.get_string(*f, "\"faults.engine\"");
    if (engine == "replay") faults.engine = faultsim::InjectionEngine::kReplay;
    else if (engine == "checkpoint") faults.engine = faultsim::InjectionEngine::kCheckpoint;
    else ctx.fail(*f, "\"faults.engine\" must be \"replay\" or \"checkpoint\", got \"" +
                      engine + "\"");
  }
  if (const JsonValue* f = v.find("shard")) {
    ctx.object(*f, "\"faults.shard\"");
    ctx.check_keys(*f, "\"faults.shard\"", {"index", "count"});
    // Parse the count first so the index bound can name it.
    if (const JsonValue* g = f->find("count"))
      faults.shard.count =
          ctx.get_unsigned(*g, "\"faults.shard.count\"", 1, faultsim::kMaxShards);
    if (const JsonValue* g = f->find("index"))
      faults.shard.index =
          ctx.get_unsigned(*g, "\"faults.shard.index\"", 0, faults.shard.count - 1);
  }
  return faults;
}

FuzzSection parse_fuzz(const Ctx& ctx, const JsonValue& v) {
  ctx.object(v, "\"fuzz\"");
  ctx.check_keys(v, "\"fuzz\"", {"program", "max_cycles"});
  FuzzSection fuzz;
  const JsonValue* prog = v.find("program");
  if (prog == nullptr) ctx.fail(v, "\"fuzz\" is missing required key \"program\"");
  if (!prog->is_array() || prog->items.empty())
    ctx.fail(*prog, "\"fuzz.program\" must be a non-empty array of source lines");
  for (const JsonValue& item : prog->items) {
    fuzz.program += ctx.get_string(item, "\"fuzz.program\" entry");
    fuzz.program += '\n';
  }
  if (const JsonValue* f = v.find("max_cycles"))
    fuzz.max_cycles = ctx.get_u64(*f, "\"fuzz.max_cycles\"", 1, ~u64{0});
  // Validate the program text now: a scenario that cannot even lower its
  // repro should fail at parse time with a pointer at the program block.
  try {
    (void)fuzz::deserialize(fuzz.program);
  } catch (const CheckError& e) {
    ctx.fail(*prog, std::string("\"fuzz.program\" is not a valid safedm-fuzz/v1 program: ") +
                        e.what());
  }
  return fuzz;
}

Bound parse_bound(const Ctx& ctx, const JsonValue& v, const char* what) {
  Bound bound;
  if (v.is_number()) {  // shorthand: a bare integer means exactly-equal
    bound.min = bound.max = ctx.get_u64(v, what, 0, ~u64{0});
    return bound;
  }
  ctx.object(v, what);
  ctx.check_keys(v, what, {"min", "max"});
  if (const JsonValue* f = v.find("min"))
    bound.min = ctx.get_u64(*f, (std::string(what) + ".min").c_str(), 0, ~u64{0});
  if (const JsonValue* f = v.find("max"))
    bound.max = ctx.get_u64(*f, (std::string(what) + ".max").c_str(), 0, ~u64{0});
  if (bound.min && bound.max && *bound.min > *bound.max)
    ctx.fail(v, std::string(what) + ": min exceeds max");
  if (bound.trivial()) ctx.fail(v, std::string(what) + ": empty bound (give min and/or max)");
  return bound;
}

ExpectSection parse_expect(const Ctx& ctx, const JsonValue& v) {
  ctx.object(v, "\"expect\"");
  ctx.check_keys(v, "\"expect\"", {"completed", "counters", "faults"});
  ExpectSection expect;
  if (const JsonValue* f = v.find("completed"))
    expect.completed = ctx.get_bool(*f, "\"expect.completed\"");
  if (const JsonValue* f = v.find("counters")) {
    ctx.object(*f, "\"expect.counters\"");
    ctx.check_keys(*f, "\"expect.counters\"",
                   {"zero_stag", "nodiv", "ds_match", "is_match", "monitored",
                    "distance_min", "distance_max", "nodiv_le_zero_stag"});
    if (const JsonValue* g = f->find("zero_stag"))
      expect.zero_stag = parse_bound(ctx, *g, "\"expect.counters.zero_stag\"");
    if (const JsonValue* g = f->find("nodiv"))
      expect.nodiv = parse_bound(ctx, *g, "\"expect.counters.nodiv\"");
    if (const JsonValue* g = f->find("ds_match"))
      expect.ds_match = parse_bound(ctx, *g, "\"expect.counters.ds_match\"");
    if (const JsonValue* g = f->find("is_match"))
      expect.is_match = parse_bound(ctx, *g, "\"expect.counters.is_match\"");
    if (const JsonValue* g = f->find("monitored"))
      expect.monitored = parse_bound(ctx, *g, "\"expect.counters.monitored\"");
    if (const JsonValue* g = f->find("distance_min"))
      expect.distance_min = parse_bound(ctx, *g, "\"expect.counters.distance_min\"");
    if (const JsonValue* g = f->find("distance_max"))
      expect.distance_max = parse_bound(ctx, *g, "\"expect.counters.distance_max\"");
    if (const JsonValue* g = f->find("nodiv_le_zero_stag"))
      expect.nodiv_le_zero_stag = ctx.get_bool(*g, "\"expect.counters.nodiv_le_zero_stag\"");
  }
  if (const JsonValue* f = v.find("faults")) {
    ctx.object(*f, "\"expect.faults\"");
    ctx.check_keys(*f, "\"expect.faults\"",
                   {"single_fault_ccf_max", "nodiv_ccf_ge_diverse", "ccf_rate_max",
                    "latency_sane"});
    if (const JsonValue* g = f->find("single_fault_ccf_max"))
      expect.single_fault_ccf_max =
          ctx.get_u64(*g, "\"expect.faults.single_fault_ccf_max\"", 0, ~u64{0});
    if (const JsonValue* g = f->find("nodiv_ccf_ge_diverse"))
      expect.nodiv_ccf_ge_diverse = ctx.get_bool(*g, "\"expect.faults.nodiv_ccf_ge_diverse\"");
    if (const JsonValue* g = f->find("ccf_rate_max"))
      expect.ccf_rate_max = ctx.get_fraction(*g, "\"expect.faults.ccf_rate_max\"");
    if (const JsonValue* g = f->find("latency_sane"))
      expect.latency_sane = ctx.get_bool(*g, "\"expect.faults.latency_sane\"");
  }
  return expect;
}

bool valid_name(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Scenario parse_scenario(const JsonValue& root, const std::string& file) {
  const Ctx ctx{file};
  ctx.object(root, "a scenario document");
  ctx.check_keys(root, "a scenario",
                 {"schema", "name", "description", "monitor", "soc", "group", "run", "faults",
                  "fuzz", "expect"});

  const JsonValue* schema = root.find("schema");
  if (schema == nullptr) ctx.fail(root, "missing required key \"schema\"");
  const std::string id = ctx.get_string(*schema, "\"schema\"");
  if (id != kSchemaId)
    ctx.fail(*schema, "unsupported schema \"" + id + "\" (expected \"" + kSchemaId + "\")");

  Scenario scenario;
  scenario.file = file;
  const JsonValue* name = root.find("name");
  if (name == nullptr) ctx.fail(root, "missing required key \"name\"");
  scenario.name = ctx.get_string(*name, "\"name\"");
  if (!valid_name(scenario.name))
    ctx.fail(*name, "\"name\" must be 1-128 chars of [A-Za-z0-9._-], got \"" + scenario.name +
                        "\"");
  if (const JsonValue* f = root.find("description"))
    scenario.description = ctx.get_string(*f, "\"description\"");
  if (const JsonValue* f = root.find("monitor")) scenario.monitor = parse_monitor(ctx, *f);
  if (const JsonValue* f = root.find("soc")) scenario.soc = parse_soc(ctx, *f);
  if (const JsonValue* f = root.find("group"))
    scenario.group = parse_group(ctx, *f, scenario.soc);
  if (const JsonValue* f = root.find("run")) scenario.run = parse_run(ctx, *f);
  if (const JsonValue* f = root.find("faults")) scenario.faults = parse_faults(ctx, *f);
  if (const JsonValue* f = root.find("fuzz")) scenario.fuzz = parse_fuzz(ctx, *f);
  if (const JsonValue* f = root.find("expect")) scenario.expect = parse_expect(ctx, *f);

  if (!scenario.run && !scenario.fuzz)
    ctx.fail(root, "a scenario must have a \"run\" or a \"fuzz\" section");
  if (scenario.faults && !scenario.run)
    ctx.fail(*root.find("faults"), "\"faults\" requires a \"run\" section (its workload)");
  const unsigned replicas = scenario.group ? scenario.group->replicas : 2;
  if (scenario.run && scenario.run->delayed_core >= replicas)
    ctx.fail(*root.find("run"), "\"run.delayed_core\" must be in [0, " +
                                    std::to_string(replicas - 1) + "] for " +
                                    std::to_string(replicas) + " replicas");
  if (scenario.run && scenario.run->safede && replicas != 2)
    ctx.fail(*root.find("run"),
             "\"run.safede\" enforcement is pairwise; it requires 2 replicas");
  if (scenario.faults && scenario.group)
    ctx.fail(*root.find("faults"),
             "\"faults\" campaigns run on the pairwise rig; drop the \"group\" section");
  if ((!scenario.expect.distance_min.trivial() || !scenario.expect.distance_max.trivial()) &&
      !scenario.monitor.track_distance)
    ctx.fail(*root.find("expect"),
             "\"expect.counters.distance_*\" requires \"monitor.track_distance\": true");
  return scenario;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ScenarioError(path, 0, "cannot read file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const JsonValue root = parse_json(buffer.str());
    return parse_scenario(root, path);
  } catch (const JsonParseError& e) {
    throw ScenarioError(path, e.line,
                        "JSON syntax error at column " + std::to_string(e.column) + ": " +
                            e.message);
  }
}

}  // namespace safedm::scenario
