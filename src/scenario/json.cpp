#include "safedm/scenario/json.hpp"

#include <cmath>
#include <cstdlib>

namespace safedm::scenario {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members)
    if (name == key) return &value;
  return nullptr;
}

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

namespace {

// Containers may nest this deep before the parser refuses; scenario files
// are ~4 levels, so hitting this means a pathological or hostile input.
constexpr unsigned kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after the top-level value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError{line_, column(), message};
  }

  unsigned column() const {
    std::size_t start = text_.rfind('\n', pos_ == 0 ? 0 : pos_ - 1);
    start = (start == std::string_view::npos) ? 0 : start + 1;
    return static_cast<unsigned>(pos_ - start + 1);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char take() {
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        take();
      } else {
        return;
      }
    }
  }

  void expect(char want, const char* where) {
    if (eof() || peek() != want)
      fail(std::string("expected `") + want + "` " + where);
    take();
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value(unsigned depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    if (eof()) fail("unexpected end of input (expected a value)");
    JsonValue value;
    value.line = line_;
    switch (peek()) {
      case '{': parse_object(value, depth); return value;
      case '[': parse_array(value, depth); return value;
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.text = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) fail("malformed literal (expected `true`)");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("malformed literal (expected `false`)");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("malformed literal (expected `null`)");
        value.kind = JsonValue::Kind::kNull;
        return value;
      default: parse_number(value); return value;
    }
  }

  void parse_object(JsonValue& value, unsigned depth) {
    value.kind = JsonValue::Kind::kObject;
    take();  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      take();
      return;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected a quoted object key");
      const unsigned key_line = line_;
      std::string key = parse_string();
      if (value.find(key) != nullptr) {
        line_ = key_line;
        fail("duplicate key \"" + key + "\"");
      }
      skip_ws();
      expect(':', "after an object key");
      skip_ws();
      value.members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated object (missing `}`)");
      const char c = take();
      if (c == '}') return;
      if (c != ',') fail("expected `,` or `}` in an object");
      skip_ws();
      if (!eof() && peek() == '}') fail("trailing comma in an object");
    }
  }

  void parse_array(JsonValue& value, unsigned depth) {
    value.kind = JsonValue::Kind::kArray;
    take();  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      take();
      return;
    }
    while (true) {
      skip_ws();
      value.items.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array (missing `]`)");
      const char c = take();
      if (c == ']') return;
      if (c != ',') fail("expected `,` or `]` in an array");
      skip_ws();
      if (!eof() && peek() == ']') fail("trailing comma in an array");
    }
  }

  std::string parse_string() {
    take();  // opening quote
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in a string (use \\u escapes)");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape sequence");
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(out, parse_codepoint()); break;
        default: fail("unknown escape sequence");
      }
    }
  }

  u32 parse_hex4() {
    u32 value = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("truncated \\u escape");
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<u32>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<u32>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<u32>(c - 'A' + 10);
      else fail("non-hex digit in \\u escape");
    }
    return value;
  }

  u32 parse_codepoint() {
    const u32 unit = parse_hex4();
    if (unit < 0xD800 || unit > 0xDFFF) return unit;
    if (unit >= 0xDC00) fail("unpaired low surrogate in \\u escape");
    // High surrogate: a \uXXXX low surrogate must follow immediately.
    if (!consume_literal("\\u")) fail("high surrogate not followed by \\u escape");
    const u32 low = parse_hex4();
    if (low < 0xDC00 || low > 0xDFFF) fail("high surrogate followed by a non-low surrogate");
    return 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
  }

  static void append_utf8(std::string& out, u32 cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  void parse_number(JsonValue& value) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') take();
    // Integer part: 0, or a nonzero digit followed by digits (RFC 8259
    // forbids leading zeros — `01` is two tokens, i.e. an error here).
    if (eof() || peek() < '0' || peek() > '9') fail("malformed number");
    if (peek() == '0') {
      take();
      if (!eof() && peek() >= '0' && peek() <= '9') fail("leading zero in a number");
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') take();
    }
    if (!eof() && peek() == '.') {
      take();
      if (eof() || peek() < '0' || peek() > '9') fail("digit required after decimal point");
      while (!eof() && peek() >= '0' && peek() <= '9') take();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      take();
      if (!eof() && (peek() == '+' || peek() == '-')) take();
      if (eof() || peek() < '0' || peek() > '9') fail("digit required in an exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') take();
    }
    value.kind = JsonValue::Kind::kNumber;
    value.text = std::string(text_.substr(start, pos_ - start));
    value.number = std::strtod(value.text.c_str(), nullptr);
    if (!std::isfinite(value.number)) fail("number out of double range");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  unsigned line_ = 1;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace safedm::scenario
