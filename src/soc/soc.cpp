#include "safedm/soc/soc.hpp"

#include <algorithm>

#include "safedm/assembler/transform.hpp"
#include "safedm/common/check.hpp"
#include "safedm/isa/encode.hpp"

namespace safedm::soc {

namespace {

/// Structural fingerprint of one core's effective config: everything that
/// shapes a core's serialized state or timing. Heterogeneous replicas make
/// restoring into a differently-shaped SoC a real hazard, so the snapshot
/// fingerprint covers the per-replica config, not just the shared one.
u64 core_config_fingerprint(const core::CoreConfig& c) {
  u64 h = 0xcbf29ce484222325ull;  // FNV-1a style fold
  const auto mix = [&h](u64 v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(c.l1i.size_bytes);
  mix(c.l1i.ways);
  mix(c.l1i.line_bytes);
  mix(c.l1d.size_bytes);
  mix(c.l1d.ways);
  mix(c.l1d.line_bytes);
  mix(c.store_buffer.entries);
  mix(c.store_buffer.line_bytes);
  mix(c.store_buffer.coalesce ? 1 : 0);
  mix(c.predictor.bht_entries);
  mix(c.predictor.btb_entries);
  mix(c.predictor.enabled ? 1 : 0);
  mix(c.mmio_latency);
  mix(c.mul_latency);
  mix(c.div_latency);
  mix(c.fp_add_latency);
  mix(c.fp_mul_latency);
  mix(c.fp_fma_latency);
  mix(c.fp_div_latency);
  return h;
}

}  // namespace

MpSoc::MpSoc(const SocConfig& config) : config_(config) {
  // Normalize the topology: explicit groups win; otherwise derive the
  // legacy pair layout (cores 2p/2p+1 form group p) from num_cores.
  if (config_.groups.empty()) {
    SAFEDM_CHECK_MSG(config.num_cores >= 2 && config.num_cores <= 8 &&
                         config.num_cores % 2 == 0,
                     "num_cores must be even and in [2, 8]");
    for (unsigned p = 0; p < config.num_cores / 2; ++p)
      groups_.push_back(GroupSpec::homogeneous(2));
  } else {
    groups_ = config_.groups;
    unsigned total = 0;
    for (const GroupSpec& group : groups_) {
      SAFEDM_CHECK_MSG(group.size() >= kMinGroupReplicas && group.size() <= kMaxGroupReplicas,
                       "a redundancy group must have 2..8 replicas, got " << group.size());
      total += group.size();
    }
    SAFEDM_CHECK_MSG(total <= 8, "groups must cover at most 8 cores, got " << total);
    config_.num_cores = total;
  }
  SAFEDM_CHECK_MSG(config.observer_batch >= 1, "observer_batch must be >= 1");

  // Per-replica decorrelation sanity. Image-overflow checks that need the
  // program size happen at load; everything checkable now fails now.
  const u64 data_stride = config_.data_base1 - config_.data_base0;
  for (const GroupSpec& group : groups_) {
    for (unsigned r = 0; r < group.size(); ++r) {
      const ReplicaSpec& rep = group.replicas[r];
      SAFEDM_CHECK_MSG(rep.text_offset % 4 == 0, "replica text_offset must be 4-byte aligned");
      SAFEDM_CHECK_MSG(rep.text_offset < config_.text_stride,
                       "replica text_offset 0x" << std::hex << rep.text_offset
                                                << " overflows the text stride 0x"
                                                << config_.text_stride << std::dec);
      SAFEDM_CHECK_MSG(rep.data_offset % 16 == 0, "replica data_offset must be 16-byte aligned");
      SAFEDM_CHECK_MSG(rep.data_offset < data_stride,
                       "replica data_offset overflows the data segment stride");
      SAFEDM_CHECK_MSG(rep.stack_offset % 16 == 0,
                       "replica stack_offset must be 16-byte aligned");
      // Replicas sharing a text image must agree on its contents.
      for (unsigned r2 = 0; r2 < r; ++r2)
        if (group.replicas[r2].text_offset == rep.text_offset)
          SAFEDM_CHECK_MSG(group.replicas[r2].reg_shuffle_seed == rep.reg_shuffle_seed,
                           "replicas sharing a text image must share a register-shuffle seed");
    }
  }

  group_first_.resize(groups_.size());
  unsigned next_core = 0;
  for (unsigned g = 0; g < groups_.size(); ++g) {
    group_first_[g] = next_core;
    next_core += groups_[g].size();
  }

  // Derived per-core data segment bases (shared_data: the whole group
  // shares its first replica's segment, offsets of the others ignored).
  core_data_base_.resize(config_.num_cores);
  for (unsigned g = 0; g < groups_.size(); ++g)
    for (unsigned r = 0; r < groups_[g].size(); ++r) {
      const unsigned layout_r = config_.shared_data ? 0 : r;
      const unsigned core_index = group_first_[g] + layout_r;
      core_data_base_[group_first_[g] + r] = config_.data_base0 + core_index * data_stride +
                                             groups_[g].replicas[layout_r].data_offset;
    }

  memory_ = std::make_unique<mem::PhysMem>(config.mem_base, config.mem_size);
  l2_ = std::make_unique<bus::L2Frontend>(config.l2, config.l2_timing);
  ahb_ = std::make_unique<bus::AhbBus>(*l2_, config.arbiter_bias);
  mem_port_ = std::make_unique<RoutingMemPort>(*this, *memory_, apb_, config.apb_base,
                                               config.apb_size);
  config_.core.mmio_base = config.apb_base;
  config_.core.mmio_size = config.apb_size;
  for (unsigned g = 0; g < groups_.size(); ++g)
    for (unsigned r = 0; r < groups_[g].size(); ++r) {
      const unsigned i = group_first_[g] + r;
      cores_.push_back(std::make_unique<core::Core>(effective_core_config(g, r), *mem_port_,
                                                    *ahb_, "core" + std::to_string(i)));
    }
  frames_.resize(config_.num_cores);
  prelude_commits_.assign(config_.num_cores, 0);
  observers_.resize(groups_.size());
  if (config_.observer_batch > 1) {
    obs_frames_.resize(config_.num_cores);
    for (auto& ring : obs_frames_) ring.resize(config_.observer_batch);
  }
  // Stable per-group frame/ring pointer tables for group delivery
  // (frames_/obs_frames_ never reallocate after this point).
  group_frames_.resize(groups_.size());
  group_rings_.resize(groups_.size());
  for (unsigned g = 0; g < groups_.size(); ++g)
    for (unsigned r = 0; r < groups_[g].size(); ++r) {
      group_frames_[g].push_back(&frames_[group_first_[g] + r]);
      if (config_.observer_batch > 1)
        group_rings_[g].push_back(obs_frames_[group_first_[g] + r].data());
    }
  // Cores come out of reset parked; loading a group brings it up.
  for (unsigned i = 0; i < config_.num_cores; ++i) park_core(i);
}

core::CoreConfig MpSoc::effective_core_config(unsigned group, unsigned replica) const {
  core::CoreConfig cc = groups_[group].replicas[replica].core
                            ? *groups_[group].replicas[replica].core
                            : config_.core;
  // The MMIO window is SoC-wide regardless of per-replica overrides.
  cc.mmio_base = config_.apb_base;
  cc.mmio_size = config_.apb_size;
  return cc;
}

core::Core& MpSoc::core(unsigned i) {
  SAFEDM_CHECK(i < cores_.size());
  return *cores_[i];
}

const core::Core& MpSoc::core(unsigned i) const {
  SAFEDM_CHECK(i < cores_.size());
  return *cores_[i];
}

const core::CoreTapFrame& MpSoc::frame(unsigned i) const {
  SAFEDM_CHECK(i < frames_.size());
  return frames_[i];
}

u64 MpSoc::prelude_commits(unsigned i) const {
  SAFEDM_CHECK(i < prelude_commits_.size());
  return prelude_commits_[i];
}

u64 MpSoc::data_base(unsigned i) const {
  SAFEDM_CHECK(i < core_data_base_.size());
  return core_data_base_[i];
}

void MpSoc::add_observer(CycleObserver* observer, unsigned group) {
  SAFEDM_CHECK(observer != nullptr);
  SAFEDM_CHECK_MSG(group < observers_.size(), "observer group index out of range");
  observers_[group].push_back(observer);
}

void MpSoc::park_core(unsigned core_index) {
  SAFEDM_CHECK(core_index < cores_.size());
  // Park by pointing the core at a private `ecall`: it fetches one
  // instruction and halts.
  const u64 park_pc = align_down(config_.text_base, 4096) - 4096 + core_index * 64;
  memory_->store(park_pc, isa::enc::ecall(), 4);
  cores_[core_index]->reset(park_pc, data_base(core_index), data_base(core_index) + 0x1000);
  prelude_commits_[core_index] = 0;
}

void MpSoc::load_group_images(unsigned group, const assembler::Program& program,
                              unsigned stagger_nops, unsigned delayed_replica) {
  SAFEDM_CHECK(group < num_groups());
  const GroupSpec& spec = groups_[group];
  const unsigned n = spec.size();
  SAFEDM_CHECK_MSG(delayed_replica < n, "delayed replica index out of range");
  const u64 window_base = config_.text_base + group * config_.text_stride;
  const u64 image_bytes = (stagger_nops + program.text.size()) * 4;

  // Distinct text offsets must be far enough apart to each hold a full
  // [prelude nops][program] image inside the group window.
  std::vector<u64> offsets;
  for (const ReplicaSpec& rep : spec.replicas) offsets.push_back(rep.text_offset);
  std::sort(offsets.begin(), offsets.end());
  offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());
  for (std::size_t k = 0; k + 1 < offsets.size(); ++k)
    SAFEDM_CHECK_MSG(offsets[k] + image_bytes <= offsets[k + 1],
                     "decorrelated text images of '" << program.name << "' overlap");

  // Text: one image per distinct (text_offset, shuffle seed); replicas
  // with identical decorrelation share physical code, exactly like the
  // historical pair layout (same PCs on both cores). The ctor validated
  // that replicas sharing an offset share a seed.
  for (unsigned r = 0; r < n; ++r) {
    const ReplicaSpec& rep = spec.replicas[r];
    bool first_at_offset = true;
    for (unsigned r2 = 0; r2 < r; ++r2)
      first_at_offset = first_at_offset && spec.replicas[r2].text_offset != rep.text_offset;
    if (!first_at_offset) continue;
    const assembler::Program image = assembler::shuffle_registers(program, rep.reg_shuffle_seed);
    u64 addr = window_base + rep.text_offset;
    for (unsigned i = 0; i < stagger_nops; ++i, addr += 4)
      memory_->store(addr, isa::kNopEncoding, 4);
    for (const u32 word : image.text) {
      memory_->store(addr, word, 4);
      addr += 4;
    }
    SAFEDM_CHECK_MSG(addr <= window_base + config_.text_stride,
                     "text segment '" << program.name << "' overflows its window");
    SAFEDM_CHECK_MSG(addr <= config_.data_base0, "text overlaps the data segments");
  }

  for (unsigned r = 0; r < n; ++r) {
    const unsigned core_index = group_first_[group] + r;
    const u64 base = data_base(core_index);
    if (r == 0 || !config_.shared_data) {
      memory_->write_block(base, program.data);
      memory_->fill(base + program.data.size(), program.bss_bytes, 0);
    }
    const u64 stack_top =
        align_down(base + align_up(program.data_segment_bytes(), 16) + program.stack_bytes +
                       spec.replicas[r].stack_offset,
                   16);
    const u64 image_base = window_base + spec.replicas[r].text_offset;
    const u64 program_entry = image_base + stagger_nops * 4;
    const bool delayed = (r == delayed_replica) && stagger_nops > 0;
    cores_[core_index]->reset(delayed ? image_base : program_entry, base, stack_top);
    prelude_commits_[core_index] = delayed ? stagger_nops : 0;
  }
}

void MpSoc::load_redundant(const assembler::Program& program, unsigned stagger_nops,
                           unsigned delayed_replica) {
  load_redundant_group(0, program, stagger_nops, delayed_replica);
}

void MpSoc::load_redundant_group(unsigned group, const assembler::Program& program,
                                 unsigned stagger_nops, unsigned delayed_replica) {
  load_group_images(group, program, stagger_nops, delayed_replica);
  cycle_ = 0;
}

void MpSoc::load_distinct(const assembler::Program& program0,
                          const assembler::Program& program1) {
  // Two text segments inside pair 0's window.
  const u64 text_base0 = config_.text_base;
  const u64 text_base1 =
      align_up(text_base0 + program0.text.size() * 4 + 4096, 4096);
  SAFEDM_CHECK_MSG(text_base1 + program1.text.size() * 4 <= text_base0 + config_.text_stride,
                   "distinct programs overflow the pair-0 text window");

  const auto load_one = [&](unsigned core_index, const assembler::Program& program,
                            u64 text_base) {
    u64 addr = text_base;
    for (const u32 word : program.text) {
      memory_->store(addr, word, 4);
      addr += 4;
    }
    const u64 base = data_base(core_index);
    memory_->write_block(base, program.data);
    memory_->fill(base + program.data.size(), program.bss_bytes, 0);
    const u64 stack_top = align_down(
        base + align_up(program.data_segment_bytes(), 16) + program.stack_bytes, 16);
    cores_[core_index]->reset(text_base, base, stack_top);
    prelude_commits_[core_index] = 0;
  };
  load_one(0, program0, text_base0);
  load_one(1, program1, text_base1);
  cycle_ = 0;
}

void MpSoc::step() {
  ++cycle_;
  for (unsigned i = 0; i < num_cores(); ++i) cores_[i]->step(frames_[i]);
  ahb_->step();
  if (config_.observer_batch <= 1) {
    for (unsigned g = 0; g < num_groups(); ++g) {
      const unsigned n = groups_[g].size();
      if (n == 2) {
        // Pairwise hook: the interface every pre-group observer speaks.
        const unsigned first = group_first_[g];
        for (CycleObserver* observer : observers_[g])
          observer->on_cycle(cycle_, frames_[first], frames_[first + 1]);
      } else {
        for (CycleObserver* observer : observers_[g])
          observer->on_group_cycle(cycle_, group_frames_[g].data(), n);
      }
    }
    return;
  }
  // Batched delivery: buffer the completed cycle's frames; flush when the
  // ring fills (or earlier via the APB/snapshot/run-exit flush points).
  if (obs_pending_ == 0) obs_first_cycle_ = cycle_;
  for (unsigned i = 0; i < num_cores(); ++i) obs_frames_[i][obs_pending_] = frames_[i];
  if (++obs_pending_ == config_.observer_batch) flush_observers();
}

void MpSoc::flush_observers() const {
  if (obs_pending_ == 0) return;
  const unsigned n = obs_pending_;
  obs_pending_ = 0;
  for (unsigned g = 0; g < num_groups(); ++g) {
    const unsigned replicas = groups_[g].size();
    if (replicas == 2) {
      const unsigned first = group_first_[g];
      for (CycleObserver* observer : observers_[g])
        observer->on_cycles(obs_first_cycle_, obs_frames_[first].data(),
                            obs_frames_[first + 1].data(), n);
    } else {
      for (CycleObserver* observer : observers_[g])
        observer->on_group_cycles(obs_first_cycle_, group_rings_[g].data(), replicas, n);
    }
  }
}

u64 MpSoc::run(u64 max_cycles) {
  u64 executed = 0;
  while (executed < max_cycles && !all_halted()) {
    step();
    ++executed;
  }
  // Callers poll observers after run(); make sure they are caught up.
  flush_observers();
  return executed;
}

u64 MpSoc::RoutingMemPort::load(u64 addr, unsigned size) {
  if (addr >= apb_base_ && addr < apb_base_ + apb_size_) {
    SAFEDM_CHECK_MSG(size == 4, "APB access must be 32-bit (lw/sw)");
    // Guest register reads must see observers caught up through the
    // previous cycle, exactly as per-cycle delivery would.
    owner_.flush_observers();
    return apb_.read(addr);
  }
  return ram_.load(addr, size);
}

void MpSoc::RoutingMemPort::store(u64 addr, u64 value, unsigned size) {
  if (addr >= apb_base_ && addr < apb_base_ + apb_size_) {
    SAFEDM_CHECK_MSG(size == 4, "APB access must be 32-bit (lw/sw)");
    owner_.flush_observers();
    apb_.write(addr, static_cast<u32>(value));
    return;
  }
  ram_.store(addr, value, size);
}

bool MpSoc::all_halted() const {
  return std::all_of(cores_.begin(), cores_.end(),
                     [](const auto& c) { return c->halted(); });
}

namespace {

void save_frame(StateWriter& w, const core::CoreTapFrame& frame) {
  for (const auto& stage : frame.stage)
    for (const core::StageSlotTap& slot : stage) {
      w.put_u32(slot.valid);
      w.put_u32(slot.encoding);
    }
  for (const core::PortTap& port : frame.port) {
    w.put_bool(port.enable);
    w.put_u64(port.value);
  }
  w.put_bool(frame.hold);
  w.put_u32(frame.commits);
  w.put_bool(frame.halted);
}

void restore_frame(StateReader& r, core::CoreTapFrame& frame) {
  for (auto& stage : frame.stage)
    for (core::StageSlotTap& slot : stage) {
      slot.valid = r.get_u32();
      slot.encoding = r.get_u32();
    }
  for (core::PortTap& port : frame.port) {
    port.enable = r.get_bool();
    port.value = r.get_u64();
  }
  frame.hold = r.get_bool();
  frame.commits = r.get_u32();
  frame.halted = r.get_bool();
}

}  // namespace

void MpSoc::save_state(StateWriter& w) const {
  // Deliver buffered cycles first: observers (snapshotted alongside by the
  // owner) must be caught up, and the delivery buffer itself is then empty
  // — snapshot bytes are identical across observer_batch settings.
  // observer_batch is deliberately NOT in the config fingerprint below for
  // the same reason: it changes delivery timing, not architectural state.
  flush_observers();
  w.begin_section("MSOC", 2);
  // Config fingerprint: a snapshot only restores into an identically
  // configured SoC (same topology, address map, arbiter bias).
  w.put_u32(config_.num_cores);
  w.put_u64(config_.mem_base);
  w.put_u64(config_.mem_size);
  w.put_u64(config_.text_base);
  w.put_u64(config_.text_stride);
  w.put_u64(config_.data_base0);
  w.put_u64(config_.data_base1);
  w.put_bool(config_.shared_data);
  w.put_u64(config_.apb_base);
  w.put_u64(config_.apb_size);
  w.put_u32(config_.arbiter_bias);
  // Group topology: replica counts, decorrelation transforms, and each
  // replica's effective (possibly heterogeneous) core config.
  w.put_u32(static_cast<u32>(groups_.size()));
  for (unsigned g = 0; g < groups_.size(); ++g) {
    w.put_u32(groups_[g].size());
    for (unsigned r = 0; r < groups_[g].size(); ++r) {
      const ReplicaSpec& rep = groups_[g].replicas[r];
      w.put_u64(rep.text_offset);
      w.put_u64(rep.data_offset);
      w.put_u64(rep.stack_offset);
      w.put_u32(rep.reg_shuffle_seed);
      w.put_u64(core_config_fingerprint(effective_core_config(g, r)));
    }
  }
  w.put_u64(cycle_);
  for (const core::CoreTapFrame& frame : frames_) save_frame(w, frame);
  for (u64 p : prelude_commits_) w.put_u64(p);
  memory_->save_state(w);
  l2_->save_state(w);
  ahb_->save_state(w);
  for (const auto& core : cores_) core->save_state(w);
  w.end_section();
}

void MpSoc::restore_state(StateReader& r) {
  // Deliver any pending cycles from the outgoing timeline before rewinding.
  flush_observers();
  r.begin_section("MSOC", 2);
  bool config_ok =
      r.get_u32() == config_.num_cores && r.get_u64() == config_.mem_base &&
      r.get_u64() == config_.mem_size && r.get_u64() == config_.text_base &&
      r.get_u64() == config_.text_stride && r.get_u64() == config_.data_base0 &&
      r.get_u64() == config_.data_base1 && r.get_bool() == config_.shared_data &&
      r.get_u64() == config_.apb_base && r.get_u64() == config_.apb_size &&
      r.get_u32() == config_.arbiter_bias;
  if (!config_ok) throw StateError("SoC config fingerprint mismatch");
  if (r.get_u32() != groups_.size()) throw StateError("SoC group topology mismatch");
  for (unsigned g = 0; g < groups_.size(); ++g) {
    config_ok = r.get_u32() == groups_[g].size();
    for (unsigned rep_i = 0; config_ok && rep_i < groups_[g].size(); ++rep_i) {
      const ReplicaSpec& rep = groups_[g].replicas[rep_i];
      config_ok = r.get_u64() == rep.text_offset && r.get_u64() == rep.data_offset &&
                  r.get_u64() == rep.stack_offset && r.get_u32() == rep.reg_shuffle_seed &&
                  r.get_u64() == core_config_fingerprint(effective_core_config(g, rep_i));
    }
    if (!config_ok) throw StateError("SoC group topology mismatch");
  }
  cycle_ = r.get_u64();
  for (core::CoreTapFrame& frame : frames_) restore_frame(r, frame);
  for (u64& p : prelude_commits_) p = r.get_u64();
  memory_->restore_state(r);
  l2_->restore_state(r);
  ahb_->restore_state(r);
  for (const auto& core : cores_) core->restore_state(r);
  r.end_section();
}

Snapshot MpSoc::snapshot() const {
  StateWriter w;
  save_state(w);
  return Snapshot{w.take()};
}

void MpSoc::restore(const Snapshot& snapshot) {
  StateReader r(snapshot.bytes);
  restore_state(r);
}

}  // namespace safedm::soc
