#include "safedm/soc/soc.hpp"

#include <algorithm>

#include "safedm/common/check.hpp"
#include "safedm/isa/encode.hpp"

namespace safedm::soc {

MpSoc::MpSoc(const SocConfig& config) : config_(config) {
  SAFEDM_CHECK_MSG(config.num_cores >= 2 && config.num_cores <= 8 &&
                       config.num_cores % 2 == 0,
                   "num_cores must be even and in [2, 8]");
  SAFEDM_CHECK_MSG(config.observer_batch >= 1, "observer_batch must be >= 1");
  memory_ = std::make_unique<mem::PhysMem>(config.mem_base, config.mem_size);
  l2_ = std::make_unique<bus::L2Frontend>(config.l2, config.l2_timing);
  ahb_ = std::make_unique<bus::AhbBus>(*l2_, config.arbiter_bias);
  mem_port_ = std::make_unique<RoutingMemPort>(*this, *memory_, apb_, config.apb_base,
                                               config.apb_size);
  config_.core.mmio_base = config.apb_base;
  config_.core.mmio_size = config.apb_size;
  for (unsigned i = 0; i < config.num_cores; ++i)
    cores_.push_back(std::make_unique<core::Core>(config_.core, *mem_port_, *ahb_,
                                                  "core" + std::to_string(i)));
  frames_.resize(config.num_cores);
  prelude_commits_.assign(config.num_cores, 0);
  observers_.resize(config.num_cores / 2);
  if (config_.observer_batch > 1) {
    obs_frames_.resize(config.num_cores);
    for (auto& ring : obs_frames_) ring.resize(config_.observer_batch);
  }
  // Cores come out of reset parked; loading a pair brings it up.
  for (unsigned i = 0; i < config.num_cores; ++i) park_core(i);
}

core::Core& MpSoc::core(unsigned i) {
  SAFEDM_CHECK(i < cores_.size());
  return *cores_[i];
}

const core::Core& MpSoc::core(unsigned i) const {
  SAFEDM_CHECK(i < cores_.size());
  return *cores_[i];
}

const core::CoreTapFrame& MpSoc::frame(unsigned i) const {
  SAFEDM_CHECK(i < frames_.size());
  return frames_[i];
}

u64 MpSoc::prelude_commits(unsigned i) const {
  SAFEDM_CHECK(i < prelude_commits_.size());
  return prelude_commits_[i];
}

u64 MpSoc::data_base(unsigned i) const {
  SAFEDM_CHECK(i < cores_.size());
  if (config_.shared_data) {
    // A pair shares its lower core's segment.
    i &= ~1u;
  }
  const u64 stride = config_.data_base1 - config_.data_base0;
  return config_.data_base0 + i * stride;
}

void MpSoc::add_observer(CycleObserver* observer, unsigned pair) {
  SAFEDM_CHECK(observer != nullptr);
  SAFEDM_CHECK_MSG(pair < observers_.size(), "observer pair index out of range");
  observers_[pair].push_back(observer);
}

void MpSoc::park_core(unsigned core_index) {
  SAFEDM_CHECK(core_index < cores_.size());
  // Park by pointing the core at a private `ecall`: it fetches one
  // instruction and halts.
  const u64 park_pc = align_down(config_.text_base, 4096) - 4096 + core_index * 64;
  memory_->store(park_pc, isa::enc::ecall(), 4);
  cores_[core_index]->reset(park_pc, data_base(core_index), data_base(core_index) + 0x1000);
  prelude_commits_[core_index] = 0;
}

void MpSoc::load_pair_images(unsigned pair, const assembler::Program& program,
                             unsigned stagger_nops, unsigned delayed_local) {
  SAFEDM_CHECK(pair < num_pairs());
  SAFEDM_CHECK(delayed_local < 2);
  const u64 text_base = config_.text_base + pair * config_.text_stride;

  // Text: [prelude nops][program]; program PCs identical for both cores.
  u64 addr = text_base;
  for (unsigned i = 0; i < stagger_nops; ++i, addr += 4)
    memory_->store(addr, isa::kNopEncoding, 4);
  const u64 program_entry = addr;
  for (const u32 word : program.text) {
    memory_->store(addr, word, 4);
    addr += 4;
  }
  SAFEDM_CHECK_MSG(addr <= text_base + config_.text_stride,
                   "text segment '" << program.name << "' overflows its window");
  SAFEDM_CHECK_MSG(addr <= config_.data_base0, "text overlaps the data segments");

  for (unsigned local = 0; local < 2; ++local) {
    const unsigned core_index = pair * 2 + local;
    const u64 base = data_base(core_index);
    if (local == 0 || !config_.shared_data) {
      memory_->write_block(base, program.data);
      memory_->fill(base + program.data.size(), program.bss_bytes, 0);
    }
    const u64 stack_top = align_down(
        base + align_up(program.data_segment_bytes(), 16) + program.stack_bytes, 16);
    const bool delayed = (local == delayed_local) && stagger_nops > 0;
    cores_[core_index]->reset(delayed ? text_base : program_entry, base, stack_top);
    prelude_commits_[core_index] = delayed ? stagger_nops : 0;
  }
}

void MpSoc::load_redundant(const assembler::Program& program, unsigned stagger_nops,
                           unsigned delayed_core) {
  load_redundant_pair(0, program, stagger_nops, delayed_core);
}

void MpSoc::load_redundant_pair(unsigned pair, const assembler::Program& program,
                                unsigned stagger_nops, unsigned delayed_local) {
  load_pair_images(pair, program, stagger_nops, delayed_local);
  cycle_ = 0;
}

void MpSoc::load_distinct(const assembler::Program& program0,
                          const assembler::Program& program1) {
  // Two text segments inside pair 0's window.
  const u64 text_base0 = config_.text_base;
  const u64 text_base1 =
      align_up(text_base0 + program0.text.size() * 4 + 4096, 4096);
  SAFEDM_CHECK_MSG(text_base1 + program1.text.size() * 4 <= text_base0 + config_.text_stride,
                   "distinct programs overflow the pair-0 text window");

  const auto load_one = [&](unsigned core_index, const assembler::Program& program,
                            u64 text_base) {
    u64 addr = text_base;
    for (const u32 word : program.text) {
      memory_->store(addr, word, 4);
      addr += 4;
    }
    const u64 base = data_base(core_index);
    memory_->write_block(base, program.data);
    memory_->fill(base + program.data.size(), program.bss_bytes, 0);
    const u64 stack_top = align_down(
        base + align_up(program.data_segment_bytes(), 16) + program.stack_bytes, 16);
    cores_[core_index]->reset(text_base, base, stack_top);
    prelude_commits_[core_index] = 0;
  };
  load_one(0, program0, text_base0);
  load_one(1, program1, text_base1);
  cycle_ = 0;
}

void MpSoc::step() {
  ++cycle_;
  for (unsigned i = 0; i < num_cores(); ++i) cores_[i]->step(frames_[i]);
  ahb_->step();
  if (config_.observer_batch <= 1) {
    for (unsigned pair = 0; pair < num_pairs(); ++pair)
      for (CycleObserver* observer : observers_[pair])
        observer->on_cycle(cycle_, frames_[pair * 2], frames_[pair * 2 + 1]);
    return;
  }
  // Batched delivery: buffer the completed cycle's frames; flush when the
  // ring fills (or earlier via the APB/snapshot/run-exit flush points).
  if (obs_pending_ == 0) obs_first_cycle_ = cycle_;
  for (unsigned i = 0; i < num_cores(); ++i) obs_frames_[i][obs_pending_] = frames_[i];
  if (++obs_pending_ == config_.observer_batch) flush_observers();
}

void MpSoc::flush_observers() const {
  if (obs_pending_ == 0) return;
  const unsigned n = obs_pending_;
  obs_pending_ = 0;
  for (unsigned pair = 0; pair < num_pairs(); ++pair)
    for (CycleObserver* observer : observers_[pair])
      observer->on_cycles(obs_first_cycle_, obs_frames_[pair * 2].data(),
                          obs_frames_[pair * 2 + 1].data(), n);
}

u64 MpSoc::run(u64 max_cycles) {
  u64 executed = 0;
  while (executed < max_cycles && !all_halted()) {
    step();
    ++executed;
  }
  // Callers poll observers after run(); make sure they are caught up.
  flush_observers();
  return executed;
}

u64 MpSoc::RoutingMemPort::load(u64 addr, unsigned size) {
  if (addr >= apb_base_ && addr < apb_base_ + apb_size_) {
    SAFEDM_CHECK_MSG(size == 4, "APB access must be 32-bit (lw/sw)");
    // Guest register reads must see observers caught up through the
    // previous cycle, exactly as per-cycle delivery would.
    owner_.flush_observers();
    return apb_.read(addr);
  }
  return ram_.load(addr, size);
}

void MpSoc::RoutingMemPort::store(u64 addr, u64 value, unsigned size) {
  if (addr >= apb_base_ && addr < apb_base_ + apb_size_) {
    SAFEDM_CHECK_MSG(size == 4, "APB access must be 32-bit (lw/sw)");
    owner_.flush_observers();
    apb_.write(addr, static_cast<u32>(value));
    return;
  }
  ram_.store(addr, value, size);
}

bool MpSoc::all_halted() const {
  return std::all_of(cores_.begin(), cores_.end(),
                     [](const auto& c) { return c->halted(); });
}

namespace {

void save_frame(StateWriter& w, const core::CoreTapFrame& frame) {
  for (const auto& stage : frame.stage)
    for (const core::StageSlotTap& slot : stage) {
      w.put_u32(slot.valid);
      w.put_u32(slot.encoding);
    }
  for (const core::PortTap& port : frame.port) {
    w.put_bool(port.enable);
    w.put_u64(port.value);
  }
  w.put_bool(frame.hold);
  w.put_u32(frame.commits);
  w.put_bool(frame.halted);
}

void restore_frame(StateReader& r, core::CoreTapFrame& frame) {
  for (auto& stage : frame.stage)
    for (core::StageSlotTap& slot : stage) {
      slot.valid = r.get_u32();
      slot.encoding = r.get_u32();
    }
  for (core::PortTap& port : frame.port) {
    port.enable = r.get_bool();
    port.value = r.get_u64();
  }
  frame.hold = r.get_bool();
  frame.commits = r.get_u32();
  frame.halted = r.get_bool();
}

}  // namespace

void MpSoc::save_state(StateWriter& w) const {
  // Deliver buffered cycles first: observers (snapshotted alongside by the
  // owner) must be caught up, and the delivery buffer itself is then empty
  // — snapshot bytes are identical across observer_batch settings.
  // observer_batch is deliberately NOT in the config fingerprint below for
  // the same reason: it changes delivery timing, not architectural state.
  flush_observers();
  w.begin_section("MSOC", 1);
  // Config fingerprint: a snapshot only restores into an identically
  // configured SoC (same topology, address map, arbiter bias).
  w.put_u32(config_.num_cores);
  w.put_u64(config_.mem_base);
  w.put_u64(config_.mem_size);
  w.put_u64(config_.text_base);
  w.put_u64(config_.text_stride);
  w.put_u64(config_.data_base0);
  w.put_u64(config_.data_base1);
  w.put_bool(config_.shared_data);
  w.put_u64(config_.apb_base);
  w.put_u64(config_.apb_size);
  w.put_u32(config_.arbiter_bias);
  w.put_u64(cycle_);
  for (const core::CoreTapFrame& frame : frames_) save_frame(w, frame);
  for (u64 p : prelude_commits_) w.put_u64(p);
  memory_->save_state(w);
  l2_->save_state(w);
  ahb_->save_state(w);
  for (const auto& core : cores_) core->save_state(w);
  w.end_section();
}

void MpSoc::restore_state(StateReader& r) {
  // Deliver any pending cycles from the outgoing timeline before rewinding.
  flush_observers();
  r.begin_section("MSOC", 1);
  const bool config_ok =
      r.get_u32() == config_.num_cores && r.get_u64() == config_.mem_base &&
      r.get_u64() == config_.mem_size && r.get_u64() == config_.text_base &&
      r.get_u64() == config_.text_stride && r.get_u64() == config_.data_base0 &&
      r.get_u64() == config_.data_base1 && r.get_bool() == config_.shared_data &&
      r.get_u64() == config_.apb_base && r.get_u64() == config_.apb_size &&
      r.get_u32() == config_.arbiter_bias;
  if (!config_ok) throw StateError("SoC config fingerprint mismatch");
  cycle_ = r.get_u64();
  for (core::CoreTapFrame& frame : frames_) restore_frame(r, frame);
  for (u64& p : prelude_commits_) p = r.get_u64();
  memory_->restore_state(r);
  l2_->restore_state(r);
  ahb_->restore_state(r);
  for (const auto& core : cores_) core->restore_state(r);
  r.end_section();
}

Snapshot MpSoc::snapshot() const {
  StateWriter w;
  save_state(w);
  return Snapshot{w.take()};
}

void MpSoc::restore(const Snapshot& snapshot) {
  StateReader r(snapshot.bytes);
  restore_state(r);
}

}  // namespace safedm::soc
