// Multicore MPSoC model after the Cobham Gaisler NOEL-V platform of the
// paper (Fig. 3): NOEL-V-style cores with private L1s, a shared AHB bus, a
// shared write-back L2 in front of the memory controller, and an APB bus
// for peripherals (SafeDM attaches there).
//
// The paper integrates SafeDM "in a 4-core multicore by Cobham Gaisler":
// cores are grouped into redundant *groups*, each monitored by its own
// SafeDM instance. The paper's topology is the 2-replica pair (cores 2p
// and 2p+1 form pair p); this model generalizes it to ordered groups of
// 2..8 replicas (DMON/ResiLogic-style N-variant redundancy), each replica
// optionally carrying its own structural core config and DME-style
// decorrelation transforms. A SocConfig without explicit groups derives
// one homogeneous 2-replica group per core pair — bit-exact with the
// historical pair layout.
//
// Redundant-execution conventions:
//   - All replicas of a group run the same program inside the group's text
//     window. Replicas with identical decorrelation (text offset +
//     register-shuffle seed) share one physical text image (shared code,
//     same PCs); decorrelated replicas get their own image at
//     window base + text_offset, register-renamed by their seed. An
//     optional nop prelude placed *before* the program entry implements
//     the paper's initial staggering: the delayed replica boots at the
//     prelude, the others directly at the program entry.
//   - Each core gets its own data segment copy at a distinct base
//     (different address spaces, plus any per-replica data_offset), passed
//     in a0; stacks are per-core (plus any per-replica stack_offset).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "safedm/assembler/assembler.hpp"
#include "safedm/bus/ahb.hpp"
#include "safedm/bus/apb.hpp"
#include "safedm/bus/l2_frontend.hpp"
#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"
#include "safedm/core/core.hpp"
#include "safedm/mem/phys_mem.hpp"

namespace safedm::soc {

/// Cores in the default (paper-evaluation) configuration.
inline constexpr unsigned kNumCores = 2;

/// Replicas a redundancy group may hold (and, transitively, cores an SoC
/// may hold). The pairwise diversity matrix is C(n,2) comparators, so 8
/// replicas is already a 28-comparator monitor.
inline constexpr unsigned kMinGroupReplicas = 2;
inline constexpr unsigned kMaxGroupReplicas = 8;

/// Per-replica configuration inside a redundancy group: optional
/// structural heterogeneity plus DME-style decorrelation transforms.
/// Defaults describe the paper's homogeneous, non-decorrelated replica.
struct ReplicaSpec {
  /// When set, this replica's core is built from this config instead of
  /// SocConfig::core (issue width is fixed by the model; cache geometry,
  /// store-buffer depth, predictor tables, and unit latencies are free).
  /// The MMIO window is still forced onto the SoC's APB window.
  std::optional<core::CoreConfig> core{};

  // Decorrelation transforms (DME-style deliberate diversity):
  u64 text_offset = 0;       // image placement inside the group text window
  u64 data_offset = 0;       // added to the replica's data segment base
  u64 stack_offset = 0;      // added to the computed stack top (16-aligned)
  u32 reg_shuffle_seed = 0;  // assembler::shuffle_registers seed; 0 = identity
};

/// One redundancy group: an ordered set of 2..8 replica cores monitored
/// together. Cores are assigned to groups in declaration order (group 0
/// gets cores 0..n0-1, group 1 the next n1, ...).
struct GroupSpec {
  std::vector<ReplicaSpec> replicas;

  static GroupSpec homogeneous(unsigned n) {
    GroupSpec group;
    group.replicas.resize(n);
    return group;
  }
  unsigned size() const { return static_cast<unsigned>(replicas.size()); }
};

struct SocConfig {
  /// Legacy topology knob: with `groups` empty, the SoC derives
  /// num_cores/2 homogeneous 2-replica groups (cores 2p/2p+1 form group
  /// p; must be even, 2..8). With explicit `groups`, num_cores is derived
  /// from the group sizes and this field is ignored.
  unsigned num_cores = kNumCores;
  core::CoreConfig core{};
  mem::CacheConfig l2{.size_bytes = 256 * 1024, .ways = 8, .line_bytes = 32};
  bus::L2Timing l2_timing{};

  u64 mem_base = 0;
  u64 mem_size = 64 * 1024 * 1024;
  u64 text_base = 0x0001'0000;
  u64 text_stride = 0x0010'0000;   // per-pair text segment spacing
  u64 data_base0 = 0x0040'0000;    // core 0's data segment
  u64 data_base1 = 0x0080'0000;    // core 1's; later cores continue the stride
  bool shared_data = false;        // ablation A3: a pair shares one data segment

  /// APB peripheral window: core loads/stores here route to the APB bus
  /// (uncached), letting guest programs poll SafeDM directly.
  u64 apb_base = 0x8000'0000;
  u64 apb_size = 0x0010'0000;

  /// Redundancy-group topology. Empty derives the legacy pair layout from
  /// num_cores; group replica counts must each be in [2, 8] and the total
  /// core count in [2, 8].
  std::vector<GroupSpec> groups{};

  /// Initial arbiter round-robin position (run-to-run platform variation).
  unsigned arbiter_bias = 0;

  /// Cycles of tap frames buffered before observers are invoked. 1 (the
  /// default) delivers per-cycle via on_cycle; N > 1 accumulates N
  /// completed cycles in per-core rings and hands them to on_cycles in
  /// one call, amortizing virtual dispatch across the batch. Pending
  /// frames auto-flush on snapshot/save, at the end of run(), and before
  /// any core's APB-window access, so guest programs and checkpoints
  /// always observe exact per-cycle semantics. Only enable when every
  /// attached observer is a pure sink (SafeDM, traces); intervening
  /// observers (SafeDE, DCLS) need per-cycle delivery.
  unsigned observer_batch = 1;
};

/// Observers see their group's tap frames each cycle (SafeDM, SafeDE,
/// traces). Two-replica groups are delivered through the pairwise hooks
/// (on_cycle/on_cycles, frame0/frame1 being the group's lower/upper
/// core) — the interface every pre-group observer implements. Larger
/// groups go through the group hooks; only observers that understand
/// N > 2 (SafeDM's pairwise diversity matrix) override those.
class CycleObserver {
 public:
  virtual ~CycleObserver() = default;
  virtual void on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                        const core::CoreTapFrame& frame1) = 0;

  /// Batched delivery (SocConfig::observer_batch > 1): `n` consecutive
  /// completed cycles, frame0[k]/frame1[k] being the pair's frames for
  /// cycle first_cycle + k. The default unrolls to per-cycle on_cycle
  /// calls; observers with a batched fast path (SafeDM) override.
  virtual void on_cycles(u64 first_cycle, const core::CoreTapFrame* frame0,
                         const core::CoreTapFrame* frame1, unsigned n) {
    for (unsigned k = 0; k < n; ++k) on_cycle(first_cycle + k, frame0[k], frame1[k]);
  }

  /// Group delivery: frames[r] is replica r's frame for this cycle. The
  /// default forwards 2-replica groups to on_cycle and rejects larger
  /// ones, so pair-only observers cannot silently watch a third replica.
  virtual void on_group_cycle(u64 cycle, const core::CoreTapFrame* const* frames,
                              unsigned n_replicas) {
    SAFEDM_CHECK_MSG(n_replicas == 2, "observer only handles 2-replica groups");
    on_cycle(cycle, *frames[0], *frames[1]);
  }

  /// Batched group delivery: frames[r] points at `n_cycles` consecutive
  /// frames of replica r (frames[r][k] is replica r at first_cycle + k).
  /// Default: 2-replica groups ride the pairwise batched hook; larger
  /// groups unroll to per-cycle on_group_cycle calls.
  virtual void on_group_cycles(u64 first_cycle, const core::CoreTapFrame* const* frames,
                               unsigned n_replicas, unsigned n_cycles) {
    if (n_replicas == 2) {
      on_cycles(first_cycle, frames[0], frames[1], n_cycles);
      return;
    }
    const core::CoreTapFrame* cycle_frames[kMaxGroupReplicas];
    for (unsigned k = 0; k < n_cycles; ++k) {
      for (unsigned r = 0; r < n_replicas; ++r) cycle_frames[r] = frames[r] + k;
      on_group_cycle(first_cycle + k, cycle_frames, n_replicas);
    }
  }
};

class MpSoc {
 public:
  explicit MpSoc(const SocConfig& config);

  unsigned num_cores() const { return static_cast<unsigned>(cores_.size()); }
  /// Legacy alias from the pair era; every "pair" is now a group.
  unsigned num_pairs() const { return num_groups(); }

  // ---- group topology ------------------------------------------------------
  unsigned num_groups() const { return static_cast<unsigned>(groups_.size()); }
  unsigned group_size(unsigned group) const {
    SAFEDM_CHECK(group < groups_.size());
    return groups_[group].size();
  }
  /// Global core index of replica `replica` of `group`.
  unsigned group_core(unsigned group, unsigned replica) const {
    SAFEDM_CHECK(group < groups_.size() && replica < groups_[group].size());
    return group_first_[group] + replica;
  }
  const GroupSpec& group_spec(unsigned group) const {
    SAFEDM_CHECK(group < groups_.size());
    return groups_[group];
  }

  /// Load `program` for redundant execution on group 0.
  /// `stagger_nops` nop instructions are executed by replica
  /// `delayed_replica` before it enters the program; all replicas start at
  /// cycle 0. Per-replica decorrelation (text/data/stack offsets, register
  /// shuffle) comes from the group's ReplicaSpecs.
  void load_redundant(const assembler::Program& program, unsigned stagger_nops = 0,
                      unsigned delayed_replica = 1);

  /// Same, for an arbitrary group; `delayed_replica` is a group-local
  /// replica index. Groups can be loaded independently.
  void load_redundant_group(unsigned group, const assembler::Program& program,
                            unsigned stagger_nops = 0, unsigned delayed_replica = 1);

  /// Legacy alias (pair == 2-replica group).
  void load_redundant_pair(unsigned pair, const assembler::Program& program,
                           unsigned stagger_nops = 0, unsigned delayed_local = 1) {
    load_redundant_group(pair, program, stagger_nops, delayed_local);
  }

  /// Load two different programs onto pair 0 (diverse software use case).
  void load_distinct(const assembler::Program& program0, const assembler::Program& program1);

  /// Park a core in a halted state (unused cores of a partially loaded SoC).
  void park_core(unsigned core_index);

  /// Advance one clock cycle (cores, then bus, then observers).
  void step();

  /// Run until all cores halt or `max_cycles` elapse; returns cycles run.
  u64 run(u64 max_cycles);

  bool all_halted() const;

  core::Core& core(unsigned i);
  const core::Core& core(unsigned i) const;
  const core::CoreTapFrame& frame(unsigned i) const;
  /// Number of prelude nops core `i` executes before its program.
  u64 prelude_commits(unsigned i) const;
  /// Data segment base assigned to core `i`.
  u64 data_base(unsigned i) const;

  mem::PhysMem& memory() { return *memory_; }
  bus::ApbBus& apb() { return apb_; }
  bus::AhbBus& ahb() { return *ahb_; }
  const bus::L2Frontend& l2() const { return *l2_; }
  u64 cycle() const { return cycle_; }
  const SocConfig& config() const { return config_; }

  /// Attach an observer to `group` (default: group 0).
  void add_observer(CycleObserver* observer, unsigned group = 0);

  /// Deliver any buffered observer cycles now (observer_batch > 1; no-op
  /// otherwise). Safe mid-step — the buffer only ever holds completed
  /// cycles — so an APB read always sees observers caught up through the
  /// previous cycle, exactly as per-cycle delivery would. const because
  /// delivery timing is not architectural SoC state.
  void flush_observers() const;

  /// Capture the complete SoC state (memory, L2, bus, cores, tap frames)
  /// as a self-contained snapshot; `restore` rewinds this instance to it.
  /// The snapshot carries a config fingerprint: restoring into an MpSoc
  /// built from a different SocConfig throws StateError. Observers are
  /// not part of the SoC's state — stateful observers (SafeDM, SafeDE,
  /// DCLS) serialize themselves and must be saved/restored alongside,
  /// staying attached to the same pair.
  Snapshot snapshot() const;
  void restore(const Snapshot& snapshot);

  /// Composable forms for embedding the SoC in a larger stream (e.g. a
  /// fault-campaign checkpoint that bundles the SoC with its monitor).
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  void load_group_images(unsigned group, const assembler::Program& program,
                         unsigned stagger_nops, unsigned delayed_replica);
  /// The replica's core config (its override or SocConfig::core), with the
  /// MMIO window forced onto the SoC's APB window.
  core::CoreConfig effective_core_config(unsigned group, unsigned replica) const;

  /// Routes the APB window to the peripheral bus, everything else to RAM.
  class RoutingMemPort final : public MemoryPort {
   public:
    RoutingMemPort(const MpSoc& owner, mem::PhysMem& ram, bus::ApbBus& apb, u64 apb_base,
                   u64 apb_size)
        : owner_(owner), ram_(ram), apb_(apb), apb_base_(apb_base), apb_size_(apb_size) {}
    u64 load(u64 addr, unsigned size) override;
    void store(u64 addr, u64 value, unsigned size) override;

   private:
    const MpSoc& owner_;  // flush hook: APB accesses must see observers caught up
    mem::PhysMem& ram_;
    bus::ApbBus& apb_;
    u64 apb_base_;
    u64 apb_size_;
  };

  SocConfig config_;
  std::unique_ptr<mem::PhysMem> memory_;
  std::unique_ptr<bus::L2Frontend> l2_;
  std::unique_ptr<bus::AhbBus> ahb_;
  bus::ApbBus apb_;  // lint: no-snapshot(stateless address decode; devices snapshot themselves)
  std::unique_ptr<RoutingMemPort> mem_port_;  // lint: no-snapshot(stateless routing shim over memory_)
  std::vector<std::unique_ptr<core::Core>> cores_;
  std::vector<core::CoreTapFrame> frames_;
  std::vector<u64> prelude_commits_;
  // Normalized group topology (never empty after construction) and the
  // derived per-core layout. All of it restates SocConfig, so the config
  // fingerprint — not the state body — covers it.
  std::vector<GroupSpec> groups_;      // fingerprinted by save/restore_state directly
  std::vector<unsigned> group_first_;  // lint: no-snapshot(derived from groups_)
  std::vector<u64> core_data_base_;    // lint: no-snapshot(derived from groups_ + address map)
  // per group
  std::vector<std::vector<CycleObserver*>> observers_;  // lint: no-snapshot(observer wiring, re-attached by owner)
  // Stable per-group frame pointer tables for group delivery (pointers
  // into frames_ / obs_frames_, which never reallocate after the ctor).
  std::vector<std::vector<const core::CoreTapFrame*>> group_frames_;  // lint: no-snapshot(derived wiring)
  std::vector<std::vector<const core::CoreTapFrame*>> group_rings_;   // lint: no-snapshot(derived wiring)
  u64 cycle_ = 0;

  // Batched observer delivery (config_.observer_batch > 1): completed
  // cycles' frames accumulate per core, then flush in one on_cycles call.
  // Delivery timing is not architectural state — a flush precedes every
  // save/restore — hence mutable and unserialized: snapshot bytes are
  // identical across observer_batch settings.
  mutable std::vector<std::vector<core::CoreTapFrame>> obs_frames_;  // lint: no-snapshot(delivery buffer, flushed before save_state)
  mutable unsigned obs_pending_ = 0;  // lint: no-snapshot(flushed before save_state)
  mutable u64 obs_first_cycle_ = 0;   // lint: no-snapshot(flushed before save_state)
};

}  // namespace safedm::soc
