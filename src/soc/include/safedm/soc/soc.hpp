// Multicore MPSoC model after the Cobham Gaisler NOEL-V platform of the
// paper (Fig. 3): NOEL-V-style cores with private L1s, a shared AHB bus, a
// shared write-back L2 in front of the memory controller, and an APB bus
// for peripherals (SafeDM attaches there).
//
// The paper integrates SafeDM "in a 4-core multicore by Cobham Gaisler":
// cores are grouped into redundant pairs (cores 2p and 2p+1 form pair p),
// each pair monitored by its own SafeDM instance; the default
// configuration is the dual-core setup of the evaluation.
//
// Redundant-execution conventions:
//   - Both cores of a pair run the same text segment (shared physical
//     code, same PCs). An optional nop prelude placed *before* the program
//     entry implements the paper's initial staggering: the delayed core
//     boots at the prelude, the other directly at the program entry.
//   - Each core gets its own data segment copy at a distinct base
//     (different address spaces), passed in a0; stacks are per-core.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "safedm/assembler/assembler.hpp"
#include "safedm/bus/ahb.hpp"
#include "safedm/bus/apb.hpp"
#include "safedm/bus/l2_frontend.hpp"
#include "safedm/common/state.hpp"
#include "safedm/core/core.hpp"
#include "safedm/mem/phys_mem.hpp"

namespace safedm::soc {

/// Cores in the default (paper-evaluation) configuration.
inline constexpr unsigned kNumCores = 2;

struct SocConfig {
  unsigned num_cores = kNumCores;  // even, 2..8; cores 2p/2p+1 form pair p
  core::CoreConfig core{};
  mem::CacheConfig l2{.size_bytes = 256 * 1024, .ways = 8, .line_bytes = 32};
  bus::L2Timing l2_timing{};

  u64 mem_base = 0;
  u64 mem_size = 64 * 1024 * 1024;
  u64 text_base = 0x0001'0000;
  u64 text_stride = 0x0010'0000;   // per-pair text segment spacing
  u64 data_base0 = 0x0040'0000;    // core 0's data segment
  u64 data_base1 = 0x0080'0000;    // core 1's; later cores continue the stride
  bool shared_data = false;        // ablation A3: a pair shares one data segment

  /// APB peripheral window: core loads/stores here route to the APB bus
  /// (uncached), letting guest programs poll SafeDM directly.
  u64 apb_base = 0x8000'0000;
  u64 apb_size = 0x0010'0000;

  /// Initial arbiter round-robin position (run-to-run platform variation).
  unsigned arbiter_bias = 0;

  /// Cycles of tap frames buffered before observers are invoked. 1 (the
  /// default) delivers per-cycle via on_cycle; N > 1 accumulates N
  /// completed cycles in per-core rings and hands them to on_cycles in
  /// one call, amortizing virtual dispatch across the batch. Pending
  /// frames auto-flush on snapshot/save, at the end of run(), and before
  /// any core's APB-window access, so guest programs and checkpoints
  /// always observe exact per-cycle semantics. Only enable when every
  /// attached observer is a pure sink (SafeDM, traces); intervening
  /// observers (SafeDE, DCLS) need per-cycle delivery.
  unsigned observer_batch = 1;
};

/// Observers see their pair's two tap frames each cycle (SafeDM, SafeDE,
/// traces). frame0/frame1 are the pair's lower/upper core.
class CycleObserver {
 public:
  virtual ~CycleObserver() = default;
  virtual void on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                        const core::CoreTapFrame& frame1) = 0;

  /// Batched delivery (SocConfig::observer_batch > 1): `n` consecutive
  /// completed cycles, frame0[k]/frame1[k] being the pair's frames for
  /// cycle first_cycle + k. The default unrolls to per-cycle on_cycle
  /// calls; observers with a batched fast path (SafeDM) override.
  virtual void on_cycles(u64 first_cycle, const core::CoreTapFrame* frame0,
                         const core::CoreTapFrame* frame1, unsigned n) {
    for (unsigned k = 0; k < n; ++k) on_cycle(first_cycle + k, frame0[k], frame1[k]);
  }
};

class MpSoc {
 public:
  explicit MpSoc(const SocConfig& config);

  unsigned num_cores() const { return static_cast<unsigned>(cores_.size()); }
  unsigned num_pairs() const { return num_cores() / 2; }

  /// Load `program` for redundant execution on pair 0 (cores 0 and 1).
  /// `stagger_nops` nop instructions are executed by core `delayed_core`
  /// (0 or 1) before it enters the program. Both cores start at cycle 0.
  void load_redundant(const assembler::Program& program, unsigned stagger_nops = 0,
                      unsigned delayed_core = 1);

  /// Same, for an arbitrary pair; `delayed_local` selects the pair's lower
  /// (0) or upper (1) core. Pairs can be loaded independently.
  void load_redundant_pair(unsigned pair, const assembler::Program& program,
                           unsigned stagger_nops = 0, unsigned delayed_local = 1);

  /// Load two different programs onto pair 0 (diverse software use case).
  void load_distinct(const assembler::Program& program0, const assembler::Program& program1);

  /// Park a core in a halted state (unused cores of a partially loaded SoC).
  void park_core(unsigned core_index);

  /// Advance one clock cycle (cores, then bus, then observers).
  void step();

  /// Run until all cores halt or `max_cycles` elapse; returns cycles run.
  u64 run(u64 max_cycles);

  bool all_halted() const;

  core::Core& core(unsigned i);
  const core::Core& core(unsigned i) const;
  const core::CoreTapFrame& frame(unsigned i) const;
  /// Number of prelude nops core `i` executes before its program.
  u64 prelude_commits(unsigned i) const;
  /// Data segment base assigned to core `i`.
  u64 data_base(unsigned i) const;

  mem::PhysMem& memory() { return *memory_; }
  bus::ApbBus& apb() { return apb_; }
  bus::AhbBus& ahb() { return *ahb_; }
  const bus::L2Frontend& l2() const { return *l2_; }
  u64 cycle() const { return cycle_; }
  const SocConfig& config() const { return config_; }

  /// Attach an observer to `pair` (default: pair 0).
  void add_observer(CycleObserver* observer, unsigned pair = 0);

  /// Deliver any buffered observer cycles now (observer_batch > 1; no-op
  /// otherwise). Safe mid-step — the buffer only ever holds completed
  /// cycles — so an APB read always sees observers caught up through the
  /// previous cycle, exactly as per-cycle delivery would. const because
  /// delivery timing is not architectural SoC state.
  void flush_observers() const;

  /// Capture the complete SoC state (memory, L2, bus, cores, tap frames)
  /// as a self-contained snapshot; `restore` rewinds this instance to it.
  /// The snapshot carries a config fingerprint: restoring into an MpSoc
  /// built from a different SocConfig throws StateError. Observers are
  /// not part of the SoC's state — stateful observers (SafeDM, SafeDE,
  /// DCLS) serialize themselves and must be saved/restored alongside,
  /// staying attached to the same pair.
  Snapshot snapshot() const;
  void restore(const Snapshot& snapshot);

  /// Composable forms for embedding the SoC in a larger stream (e.g. a
  /// fault-campaign checkpoint that bundles the SoC with its monitor).
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  void load_pair_images(unsigned pair, const assembler::Program& program,
                        unsigned stagger_nops, unsigned delayed_local);

  /// Routes the APB window to the peripheral bus, everything else to RAM.
  class RoutingMemPort final : public MemoryPort {
   public:
    RoutingMemPort(const MpSoc& owner, mem::PhysMem& ram, bus::ApbBus& apb, u64 apb_base,
                   u64 apb_size)
        : owner_(owner), ram_(ram), apb_(apb), apb_base_(apb_base), apb_size_(apb_size) {}
    u64 load(u64 addr, unsigned size) override;
    void store(u64 addr, u64 value, unsigned size) override;

   private:
    const MpSoc& owner_;  // flush hook: APB accesses must see observers caught up
    mem::PhysMem& ram_;
    bus::ApbBus& apb_;
    u64 apb_base_;
    u64 apb_size_;
  };

  SocConfig config_;
  std::unique_ptr<mem::PhysMem> memory_;
  std::unique_ptr<bus::L2Frontend> l2_;
  std::unique_ptr<bus::AhbBus> ahb_;
  bus::ApbBus apb_;  // lint: no-snapshot(stateless address decode; devices snapshot themselves)
  std::unique_ptr<RoutingMemPort> mem_port_;  // lint: no-snapshot(stateless routing shim over memory_)
  std::vector<std::unique_ptr<core::Core>> cores_;
  std::vector<core::CoreTapFrame> frames_;
  std::vector<u64> prelude_commits_;
  // per pair
  std::vector<std::vector<CycleObserver*>> observers_;  // lint: no-snapshot(observer wiring, re-attached by owner)
  u64 cycle_ = 0;

  // Batched observer delivery (config_.observer_batch > 1): completed
  // cycles' frames accumulate per core, then flush in one on_cycles call.
  // Delivery timing is not architectural state — a flush precedes every
  // save/restore — hence mutable and unserialized: snapshot bytes are
  // identical across observer_batch settings.
  mutable std::vector<std::vector<core::CoreTapFrame>> obs_frames_;  // lint: no-snapshot(delivery buffer, flushed before save_state)
  mutable unsigned obs_pending_ = 0;  // lint: no-snapshot(flushed before save_state)
  mutable u64 obs_first_cycle_ = 0;   // lint: no-snapshot(flushed before save_state)
};

}  // namespace safedm::soc
