// SafeDE-style diversity *enforcement* baseline (paper reference [4],
// Table II's "diversity enforced (intrusive)" column).
//
// Unlike SafeDM, which only observes, SafeDE guarantees staggering by
// construction: it tracks the committed-instruction distance between the
// head and trail cores and stalls the trail core whenever the distance
// falls below a programmed threshold. This is intrusive — stall cycles
// lengthen execution — which is exactly the trade-off the intrusiveness
// benchmark (E4) quantifies against SafeDM's zero overhead.
#pragma once

#include "safedm/common/bits.hpp"
#include "safedm/soc/soc.hpp"

namespace safedm::safede {

struct SafeDeConfig {
  unsigned head_core = 0;     // the core allowed to run ahead
  i64 min_staggering = 100;   // minimum committed-instruction distance
  bool enabled = true;
};

struct SafeDeStats {
  u64 stall_cycles = 0;       // cycles the trail core was frozen
  u64 interventions = 0;      // rising edges of the stall signal
  i64 min_observed_diff = 0;  // most dangerous distance seen while enabled
};

class SafeDe final : public soc::CycleObserver {
 public:
  SafeDe(const SafeDeConfig& config, soc::MpSoc& soc);

  void on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                const core::CoreTapFrame& frame1) override;

  void enable(bool on);
  /// Head-core commits minus trail-core commits.
  i64 staggering() const { return diff_; }
  const SafeDeStats& stats() const { return stats_; }
  const SafeDeConfig& config() const { return config_; }

  /// The stall line itself lives in the core (external_stall), which the
  /// SoC snapshot covers; this covers the enforcement FSM that drives it.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  SafeDeConfig config_;
  soc::MpSoc& soc_;
  i64 diff_ = 0;
  bool stalling_ = false;
  bool first_sample_ = true;
  SafeDeStats stats_;
};

}  // namespace safedm::safede
