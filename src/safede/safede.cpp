#include "safedm/safede/safede.hpp"

#include <algorithm>

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm::safede {

SafeDe::SafeDe(const SafeDeConfig& config, soc::MpSoc& soc) : config_(config), soc_(soc) {
  SAFEDM_CHECK(config.head_core < soc::kNumCores);
  SAFEDM_CHECK_MSG(config.min_staggering >= 0, "staggering threshold must be non-negative");
}

void SafeDe::enable(bool on) {
  config_.enabled = on;
  if (!on && stalling_) {
    soc_.core(config_.head_core ^ 1u).set_external_stall(false);
    stalling_ = false;
  }
}

void SafeDe::on_cycle(u64, const core::CoreTapFrame& frame0, const core::CoreTapFrame& frame1) {
  const unsigned head = config_.head_core;
  const unsigned trail = head ^ 1u;
  const auto& head_frame = head == 0 ? frame0 : frame1;
  const auto& trail_frame = head == 0 ? frame1 : frame0;

  diff_ += static_cast<i64>(head_frame.commits) - static_cast<i64>(trail_frame.commits);
  if (first_sample_) {
    stats_.min_observed_diff = diff_;
    first_sample_ = false;
  }
  stats_.min_observed_diff = std::min(stats_.min_observed_diff, diff_);

  if (!config_.enabled) return;

  // Once the head core finishes, holding the trail core back can only
  // deadlock the system; release it.
  const bool head_done = head_frame.halted;
  const bool want_stall = !head_done && !trail_frame.halted && diff_ < config_.min_staggering;

  if (want_stall && !stalling_) ++stats_.interventions;
  if (want_stall) ++stats_.stall_cycles;
  if (want_stall != stalling_) {
    soc_.core(trail).set_external_stall(want_stall);
    stalling_ = want_stall;
  }
}

void SafeDe::save_state(StateWriter& w) const {
  w.begin_section("SFDE", 1);
  w.put_u32(config_.head_core);
  w.put_i64(config_.min_staggering);
  w.put_bool(config_.enabled);
  w.put_i64(diff_);
  w.put_bool(stalling_);
  w.put_bool(first_sample_);
  w.put_u64(stats_.stall_cycles);
  w.put_u64(stats_.interventions);
  w.put_i64(stats_.min_observed_diff);
  w.end_section();
}

void SafeDe::restore_state(StateReader& r) {
  r.begin_section("SFDE", 1);
  if (r.get_u32() != config_.head_core || r.get_i64() != config_.min_staggering)
    throw StateError("SafeDE config mismatch");
  config_.enabled = r.get_bool();  // enable() is a runtime toggle
  diff_ = r.get_i64();
  stalling_ = r.get_bool();
  first_sample_ = r.get_bool();
  stats_.stall_cycles = r.get_u64();
  stats_.interventions = r.get_u64();
  stats_.min_observed_diff = r.get_i64();
  r.end_section();
}

}  // namespace safedm::safede
