#include "safedm/safede/safede.hpp"

#include <algorithm>

#include "safedm/common/check.hpp"

namespace safedm::safede {

SafeDe::SafeDe(const SafeDeConfig& config, soc::MpSoc& soc) : config_(config), soc_(soc) {
  SAFEDM_CHECK(config.head_core < soc::kNumCores);
  SAFEDM_CHECK_MSG(config.min_staggering >= 0, "staggering threshold must be non-negative");
}

void SafeDe::enable(bool on) {
  config_.enabled = on;
  if (!on && stalling_) {
    soc_.core(config_.head_core ^ 1u).set_external_stall(false);
    stalling_ = false;
  }
}

void SafeDe::on_cycle(u64, const core::CoreTapFrame& frame0, const core::CoreTapFrame& frame1) {
  const unsigned head = config_.head_core;
  const unsigned trail = head ^ 1u;
  const auto& head_frame = head == 0 ? frame0 : frame1;
  const auto& trail_frame = head == 0 ? frame1 : frame0;

  diff_ += static_cast<i64>(head_frame.commits) - static_cast<i64>(trail_frame.commits);
  if (first_sample_) {
    stats_.min_observed_diff = diff_;
    first_sample_ = false;
  }
  stats_.min_observed_diff = std::min(stats_.min_observed_diff, diff_);

  if (!config_.enabled) return;

  // Once the head core finishes, holding the trail core back can only
  // deadlock the system; release it.
  const bool head_done = head_frame.halted;
  const bool want_stall = !head_done && !trail_frame.halted && diff_ < config_.min_staggering;

  if (want_stall && !stalling_) ++stats_.interventions;
  if (want_stall) ++stats_.stall_cycles;
  if (want_stall != stalling_) {
    soc_.core(trail).set_external_stall(want_stall);
    stalling_ = want_stall;
  }
}

}  // namespace safedm::safede
