#include "safedm/isa/disasm.hpp"

#include <sstream>

#include "safedm/isa/decode.hpp"

namespace safedm::isa {
namespace {

std::string reg_name(u8 index, bool fp) {
  std::ostringstream os;
  os << (fp ? 'f' : 'x') << static_cast<unsigned>(index);
  return os.str();
}

}  // namespace

std::string disassemble(const DecodedInst& inst) {
  if (!inst.valid()) {
    std::ostringstream os;
    os << ".word 0x" << std::hex << inst.raw;
    return os.str();
  }
  const InstInfo& ii = inst.info();
  std::ostringstream os;
  os << ii.name;

  const auto rd = [&] { return reg_name(inst.rd, ii.rd_fp()); };
  const auto rs1 = [&] { return reg_name(inst.rs1, ii.rs1_fp()); };
  const auto rs2 = [&] { return reg_name(inst.rs2, ii.rs2_fp()); };
  const auto rs3 = [&] { return reg_name(inst.rs3, ii.rs3_fp()); };

  switch (ii.format) {
    case Format::kR:
    case Format::kRFp:
      if (ii.reads_rs2())
        os << ' ' << rd() << ", " << rs1() << ", " << rs2();
      else
        os << ' ' << rd() << ", " << rs1();
      break;
    case Format::kRFp1:
      os << ' ' << rd() << ", " << rs1();
      break;
    case Format::kR4:
      os << ' ' << rd() << ", " << rs1() << ", " << rs2() << ", " << rs3();
      break;
    case Format::kI:
      if (ii.exec_class == ExecClass::kEcall || ii.exec_class == ExecClass::kEbreak ||
          ii.exec_class == ExecClass::kFence) {
        // no operands
      } else if (ii.is_load()) {
        os << ' ' << rd() << ", " << inst.imm << '(' << rs1() << ')';
      } else {
        os << ' ' << rd() << ", " << rs1() << ", " << inst.imm;
      }
      break;
    case Format::kISh64:
    case Format::kISh32:
      os << ' ' << rd() << ", " << rs1() << ", " << inst.imm;
      break;
    case Format::kS:
      os << ' ' << rs2() << ", " << inst.imm << '(' << rs1() << ')';
      break;
    case Format::kB:
      os << ' ' << rs1() << ", " << rs2() << ", " << inst.imm;
      break;
    case Format::kU:
      os << ' ' << rd() << ", 0x" << std::hex << (static_cast<u64>(inst.imm) >> 12);
      break;
    case Format::kJ:
      os << ' ' << rd() << ", " << inst.imm;
      break;
  }
  return os.str();
}

std::string disassemble(u32 raw) { return disassemble(decode(raw)); }

}  // namespace safedm::isa
