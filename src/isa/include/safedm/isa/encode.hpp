// Instruction encoders.
//
// One function per mnemonic, built on format packers that mirror the RISC-V
// spec's bit layouts. Immediate ranges are checked eagerly: an
// out-of-range immediate is a workload-authoring bug we want at build time
// of the program image, not as a misdecoded instruction later.
#pragma once

#include "safedm/common/bits.hpp"
#include "safedm/common/check.hpp"
#include "safedm/isa/inst.hpp"

namespace safedm::isa::enc {

using Reg = u8;  // x0..x31 or f0..f31 depending on instruction

namespace detail {

inline void check_reg(Reg r) { SAFEDM_CHECK_MSG(r < 32, "register index out of range"); }

inline void check_simm(i64 imm, unsigned width) {
  const i64 lo = -(i64{1} << (width - 1));
  const i64 hi = (i64{1} << (width - 1)) - 1;
  SAFEDM_CHECK_MSG(imm >= lo && imm <= hi,
                   "immediate " << imm << " does not fit in " << width << " signed bits");
}

inline u32 pack_r(u32 match, Reg rd, Reg rs1, Reg rs2) {
  check_reg(rd);
  check_reg(rs1);
  check_reg(rs2);
  return match | (u32{rd} << 7) | (u32{rs1} << 15) | (u32{rs2} << 20);
}

inline u32 pack_r4(u32 match, Reg rd, Reg rs1, Reg rs2, Reg rs3) {
  check_reg(rs3);
  return pack_r(match, rd, rs1, rs2) | (u32{rs3} << 27);
}

inline u32 pack_i(u32 match, Reg rd, Reg rs1, i64 imm) {
  check_reg(rd);
  check_reg(rs1);
  check_simm(imm, 12);
  return match | (u32{rd} << 7) | (u32{rs1} << 15) |
         (static_cast<u32>(imm & 0xFFF) << 20);
}

inline u32 pack_sh(u32 match, Reg rd, Reg rs1, unsigned shamt, unsigned max_shamt) {
  check_reg(rd);
  check_reg(rs1);
  SAFEDM_CHECK_MSG(shamt <= max_shamt, "shift amount out of range");
  return match | (u32{rd} << 7) | (u32{rs1} << 15) | (static_cast<u32>(shamt) << 20);
}

inline u32 pack_s(u32 match, Reg rs1, Reg rs2, i64 imm) {
  check_reg(rs1);
  check_reg(rs2);
  check_simm(imm, 12);
  const u32 uimm = static_cast<u32>(imm & 0xFFF);
  return match | (static_cast<u32>(bits(uimm, 4, 0)) << 7) | (u32{rs1} << 15) |
         (u32{rs2} << 20) | (static_cast<u32>(bits(uimm, 11, 5)) << 25);
}

inline u32 pack_b(u32 match, Reg rs1, Reg rs2, i64 offset) {
  check_reg(rs1);
  check_reg(rs2);
  SAFEDM_CHECK_MSG((offset & 1) == 0, "branch offset must be even");
  check_simm(offset, 13);
  const u32 uimm = static_cast<u32>(offset & 0x1FFF);
  return match | (static_cast<u32>(bit(uimm, 11)) << 7) |
         (static_cast<u32>(bits(uimm, 4, 1)) << 8) | (u32{rs1} << 15) | (u32{rs2} << 20) |
         (static_cast<u32>(bits(uimm, 10, 5)) << 25) |
         (static_cast<u32>(bit(uimm, 12)) << 31);
}

inline u32 pack_u(u32 match, Reg rd, i64 imm20) {
  check_reg(rd);
  // imm20 is the value placed in bits [31:12]; accept signed or unsigned views.
  SAFEDM_CHECK_MSG(imm20 >= -(i64{1} << 19) && imm20 < (i64{1} << 20),
                   "U-type immediate out of range");
  return match | (u32{rd} << 7) | (static_cast<u32>(imm20 & 0xFFFFF) << 12);
}

inline u32 pack_j(u32 match, Reg rd, i64 offset) {
  check_reg(rd);
  SAFEDM_CHECK_MSG((offset & 1) == 0, "jump offset must be even");
  check_simm(offset, 21);
  const u32 uimm = static_cast<u32>(offset & 0x1FFFFF);
  return match | (u32{rd} << 7) | (static_cast<u32>(bits(uimm, 19, 12)) << 12) |
         (static_cast<u32>(bit(uimm, 11)) << 20) |
         (static_cast<u32>(bits(uimm, 10, 1)) << 21) |
         (static_cast<u32>(bit(uimm, 20)) << 31);
}

}  // namespace detail

// ---- RV64I ------------------------------------------------------------------
inline u32 lui(Reg rd, i64 imm20) { return detail::pack_u(0x37u, rd, imm20); }
inline u32 auipc(Reg rd, i64 imm20) { return detail::pack_u(0x17u, rd, imm20); }
inline u32 jal(Reg rd, i64 offset) { return detail::pack_j(0x6Fu, rd, offset); }
inline u32 jalr(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x67u, rd, rs1, imm); }

inline u32 beq(Reg rs1, Reg rs2, i64 off) { return detail::pack_b(0x63u, rs1, rs2, off); }
inline u32 bne(Reg rs1, Reg rs2, i64 off) { return detail::pack_b(0x1063u, rs1, rs2, off); }
inline u32 blt(Reg rs1, Reg rs2, i64 off) { return detail::pack_b(0x4063u, rs1, rs2, off); }
inline u32 bge(Reg rs1, Reg rs2, i64 off) { return detail::pack_b(0x5063u, rs1, rs2, off); }
inline u32 bltu(Reg rs1, Reg rs2, i64 off) { return detail::pack_b(0x6063u, rs1, rs2, off); }
inline u32 bgeu(Reg rs1, Reg rs2, i64 off) { return detail::pack_b(0x7063u, rs1, rs2, off); }

inline u32 lb(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x03u, rd, rs1, imm); }
inline u32 lh(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x1003u, rd, rs1, imm); }
inline u32 lw(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x2003u, rd, rs1, imm); }
inline u32 ld(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x3003u, rd, rs1, imm); }
inline u32 lbu(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x4003u, rd, rs1, imm); }
inline u32 lhu(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x5003u, rd, rs1, imm); }
inline u32 lwu(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x6003u, rd, rs1, imm); }
inline u32 sb(Reg rs2, Reg rs1, i64 imm) { return detail::pack_s(0x23u, rs1, rs2, imm); }
inline u32 sh(Reg rs2, Reg rs1, i64 imm) { return detail::pack_s(0x1023u, rs1, rs2, imm); }
inline u32 sw(Reg rs2, Reg rs1, i64 imm) { return detail::pack_s(0x2023u, rs1, rs2, imm); }
inline u32 sd(Reg rs2, Reg rs1, i64 imm) { return detail::pack_s(0x3023u, rs1, rs2, imm); }

inline u32 addi(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x13u, rd, rs1, imm); }
inline u32 slti(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x2013u, rd, rs1, imm); }
inline u32 sltiu(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x3013u, rd, rs1, imm); }
inline u32 xori(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x4013u, rd, rs1, imm); }
inline u32 ori(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x6013u, rd, rs1, imm); }
inline u32 andi(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x7013u, rd, rs1, imm); }
inline u32 slli(Reg rd, Reg rs1, unsigned sh) { return detail::pack_sh(0x1013u, rd, rs1, sh, 63); }
inline u32 srli(Reg rd, Reg rs1, unsigned sh) { return detail::pack_sh(0x5013u, rd, rs1, sh, 63); }
inline u32 srai(Reg rd, Reg rs1, unsigned sh) {
  return detail::pack_sh(0x40005013u, rd, rs1, sh, 63);
}
inline u32 addiw(Reg rd, Reg rs1, i64 imm) { return detail::pack_i(0x1Bu, rd, rs1, imm); }
inline u32 slliw(Reg rd, Reg rs1, unsigned sh) { return detail::pack_sh(0x101Bu, rd, rs1, sh, 31); }
inline u32 srliw(Reg rd, Reg rs1, unsigned sh) { return detail::pack_sh(0x501Bu, rd, rs1, sh, 31); }
inline u32 sraiw(Reg rd, Reg rs1, unsigned sh) {
  return detail::pack_sh(0x4000501Bu, rd, rs1, sh, 31);
}

inline u32 add(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x33u, rd, rs1, rs2); }
inline u32 sub(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x40000033u, rd, rs1, rs2); }
inline u32 sll(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x1033u, rd, rs1, rs2); }
inline u32 slt(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x2033u, rd, rs1, rs2); }
inline u32 sltu(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x3033u, rd, rs1, rs2); }
inline u32 xor_(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x4033u, rd, rs1, rs2); }
inline u32 srl(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x5033u, rd, rs1, rs2); }
inline u32 sra(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x40005033u, rd, rs1, rs2); }
inline u32 or_(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x6033u, rd, rs1, rs2); }
inline u32 and_(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x7033u, rd, rs1, rs2); }
inline u32 addw(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x3Bu, rd, rs1, rs2); }
inline u32 subw(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x4000003Bu, rd, rs1, rs2); }
inline u32 sllw(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x103Bu, rd, rs1, rs2); }
inline u32 srlw(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x503Bu, rd, rs1, rs2); }
inline u32 sraw(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x4000503Bu, rd, rs1, rs2); }

// ---- RV64M ------------------------------------------------------------------
inline u32 mul(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x02000033u, rd, rs1, rs2); }
inline u32 mulh(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x02001033u, rd, rs1, rs2); }
inline u32 mulhsu(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x02002033u, rd, rs1, rs2); }
inline u32 mulhu(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x02003033u, rd, rs1, rs2); }
inline u32 div(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x02004033u, rd, rs1, rs2); }
inline u32 divu(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x02005033u, rd, rs1, rs2); }
inline u32 rem(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x02006033u, rd, rs1, rs2); }
inline u32 remu(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x02007033u, rd, rs1, rs2); }
inline u32 mulw(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x0200003Bu, rd, rs1, rs2); }
inline u32 divw(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x0200403Bu, rd, rs1, rs2); }
inline u32 divuw(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x0200503Bu, rd, rs1, rs2); }
inline u32 remw(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x0200603Bu, rd, rs1, rs2); }
inline u32 remuw(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x0200703Bu, rd, rs1, rs2); }

// ---- System -----------------------------------------------------------------
inline u32 fence() { return 0x0000000Fu; }
inline u32 ecall() { return 0x00000073u; }
inline u32 ebreak() { return 0x00100073u; }
inline u32 nop() { return kNopEncoding; }

// ---- RV64D subset -------------------------------------------------------------
inline u32 fld(Reg frd, Reg rs1, i64 imm) { return detail::pack_i(0x3007u, frd, rs1, imm); }
inline u32 fsd(Reg frs2, Reg rs1, i64 imm) { return detail::pack_s(0x3027u, rs1, frs2, imm); }
inline u32 fadd_d(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x02000053u, rd, rs1, rs2); }
inline u32 fsub_d(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x0A000053u, rd, rs1, rs2); }
inline u32 fmul_d(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x12000053u, rd, rs1, rs2); }
inline u32 fdiv_d(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x1A000053u, rd, rs1, rs2); }
inline u32 fsqrt_d(Reg rd, Reg rs1) { return detail::pack_r(0x5A000053u, rd, rs1, 0); }
inline u32 fsgnj_d(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x22000053u, rd, rs1, rs2); }
inline u32 fsgnjn_d(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x22001053u, rd, rs1, rs2); }
inline u32 fsgnjx_d(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x22002053u, rd, rs1, rs2); }
inline u32 fmin_d(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x2A000053u, rd, rs1, rs2); }
inline u32 fmax_d(Reg rd, Reg rs1, Reg rs2) { return detail::pack_r(0x2A001053u, rd, rs1, rs2); }
inline u32 fcvt_w_d(Reg rd, Reg frs1) { return detail::pack_r(0xC2000053u, rd, frs1, 0); }
inline u32 fcvt_l_d(Reg rd, Reg frs1) { return detail::pack_r(0xC2200053u, rd, frs1, 0); }
inline u32 fcvt_d_w(Reg frd, Reg rs1) { return detail::pack_r(0xD2000053u, frd, rs1, 0); }
inline u32 fcvt_d_l(Reg frd, Reg rs1) { return detail::pack_r(0xD2200053u, frd, rs1, 0); }
inline u32 feq_d(Reg rd, Reg frs1, Reg frs2) { return detail::pack_r(0xA2002053u, rd, frs1, frs2); }
inline u32 flt_d(Reg rd, Reg frs1, Reg frs2) { return detail::pack_r(0xA2001053u, rd, frs1, frs2); }
inline u32 fle_d(Reg rd, Reg frs1, Reg frs2) { return detail::pack_r(0xA2000053u, rd, frs1, frs2); }
inline u32 fmv_x_d(Reg rd, Reg frs1) { return detail::pack_r(0xE2000053u, rd, frs1, 0); }
inline u32 fmv_d_x(Reg frd, Reg rs1) { return detail::pack_r(0xF2000053u, frd, rs1, 0); }
inline u32 fmadd_d(Reg rd, Reg rs1, Reg rs2, Reg rs3) {
  return detail::pack_r4(0x02000043u, rd, rs1, rs2, rs3);
}
inline u32 fmsub_d(Reg rd, Reg rs1, Reg rs2, Reg rs3) {
  return detail::pack_r4(0x02000047u, rd, rs1, rs2, rs3);
}
inline u32 fnmsub_d(Reg rd, Reg rs1, Reg rs2, Reg rs3) {
  return detail::pack_r4(0x0200004Bu, rd, rs1, rs2, rs3);
}
inline u32 fnmadd_d(Reg rd, Reg rs1, Reg rs2, Reg rs3) {
  return detail::pack_r4(0x0200004Fu, rd, rs1, rs2, rs3);
}

}  // namespace safedm::isa::enc
