// Instruction-set simulator (golden functional model).
//
// A plain fetch-decode-execute interpreter over MemoryPort, used as the
// architectural reference the pipelined core model is checked against
// (pipeline-vs-ISS equivalence property tests), and by workload unit tests
// to validate benchmark results quickly.
#pragma once

#include <array>

#include "safedm/common/mem_port.hpp"
#include "safedm/isa/inst.hpp"

namespace safedm::isa {

enum class HaltReason : u8 {
  kRunning,
  kEcall,       // clean program exit (ecall convention)
  kEbreak,      // debugger breakpoint
  kIllegalInst, // undecodable encoding reached execute
};

/// Architectural state of one hart.
struct ArchState {
  u64 pc = 0;
  std::array<u64, 32> x{};  // x0 reads as zero; writes ignored
  std::array<u64, 32> f{};  // IEEE-754 binary64 bit patterns
  u64 instret = 0;
  HaltReason halt = HaltReason::kRunning;

  bool halted() const { return halt != HaltReason::kRunning; }

  u64 xr(u8 r) const { return r == 0 ? 0 : x[r]; }
  void set_x(u8 r, u64 v) {
    if (r != 0) x[r] = v;
  }
};

class Iss {
 public:
  Iss(MemoryPort& mem, u64 reset_pc) : mem_(mem) { state_.pc = reset_pc; }

  ArchState& state() { return state_; }
  const ArchState& state() const { return state_; }

  /// Execute one instruction; returns false once halted.
  bool step();

  /// Run until halt or `max_instructions` executed; returns instructions run.
  u64 run(u64 max_instructions);

  /// Execute one *already decoded* instruction against an arbitrary state.
  /// This is the single source of truth for instruction semantics: the
  /// pipelined core model calls it too, so ISS and pipeline cannot diverge
  /// functionally. `next_pc` is the fall-through PC (pc + 4).
  static void execute(const DecodedInst& inst, ArchState& state, MemoryPort& mem);

 private:
  MemoryPort& mem_;
  ArchState state_;
};

}  // namespace safedm::isa
