// Disassembler for traces and test diagnostics.
#pragma once

#include <string>

#include "safedm/isa/inst.hpp"

namespace safedm::isa {

/// Render a decoded instruction in assembler-like syntax, e.g.
/// "addi x5, x5, -1" or "fmadd.d f1, f2, f3, f4".
std::string disassemble(const DecodedInst& inst);

/// Convenience overload decoding first.
std::string disassemble(u32 raw);

}  // namespace safedm::isa
