// Instruction decoder: raw 32-bit encoding -> DecodedInst.
#pragma once

#include "safedm/isa/inst.hpp"

namespace safedm::isa {

/// Decode one 32-bit instruction word. Unknown encodings decode to
/// Mnemonic::kInvalid (the pipeline raises an illegal-instruction trap).
DecodedInst decode(u32 raw);

}  // namespace safedm::isa
