// Instruction metadata for the modelled RV64IMD subset.
//
// The mnemonic enum, per-instruction match/mask pair, format and execution
// class live in a single X-macro table (inst_table.inc) so the encoder,
// decoder, disassembler, ISS and pipeline timing can never drift apart.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "safedm/common/bits.hpp"

namespace safedm::isa {

/// Encoding format (controls immediate extraction and operand presence).
enum class Format : u8 {
  kR,      // register-register (also FP ops with fixed funct3)
  kRFp,    // FP register-register with free rounding-mode field
  kRFp1,   // FP single-source (sqrt, cvt, mv) with free/fixed rm
  kR4,     // fused multiply-add, three sources
  kI,      // immediate / load / jalr / system
  kISh64,  // 64-bit shift-immediate (6-bit shamt)
  kISh32,  // 32-bit shift-immediate (5-bit shamt)
  kS,      // store
  kB,      // branch
  kU,      // upper immediate
  kJ,      // jal
};

/// Coarse execution class used for pipeline timing and ISS dispatch.
enum class ExecClass : u8 {
  kAlu,
  kMul,
  kDiv,
  kLoad,
  kStore,
  kBranch,
  kJal,
  kJalr,
  kFence,
  kEcall,
  kEbreak,
  kFpAdd,  // add/sub/sign-inject/min-max/compare/convert/move
  kFpMul,
  kFpDiv,  // divide and square root (iterative unit)
  kFpFma,
};

/// Operand-usage flags.
namespace flag {
inline constexpr u16 kReadsRs1 = 1u << 0;
inline constexpr u16 kReadsRs2 = 1u << 1;
inline constexpr u16 kReadsRs3 = 1u << 2;
inline constexpr u16 kWritesRd = 1u << 3;
inline constexpr u16 kRs1Fp = 1u << 4;
inline constexpr u16 kRs2Fp = 1u << 5;
inline constexpr u16 kRs3Fp = 1u << 6;
inline constexpr u16 kRdFp = 1u << 7;
}  // namespace flag

enum class Mnemonic : u8 {
#define SAFEDM_INST(enum_name, str, fmt, match, mask, exec, flags) enum_name,
#define R1 0
#define R2 0
#define R3 0
#define WD 0
#define F1 0
#define F2 0
#define F3 0
#define FD 0
#include "safedm/isa/inst_table.inc"
#undef R1
#undef R2
#undef R3
#undef WD
#undef F1
#undef F2
#undef F3
#undef FD
#undef SAFEDM_INST
  kInvalid,
};

inline constexpr std::size_t kMnemonicCount = static_cast<std::size_t>(Mnemonic::kInvalid);

/// Static description of one instruction of the table.
struct InstInfo {
  Mnemonic mnemonic = Mnemonic::kInvalid;
  std::string_view name;
  Format format = Format::kI;
  u32 match = 0;
  u32 mask = 0;
  ExecClass exec_class = ExecClass::kAlu;
  u16 flags = 0;

  constexpr bool reads_rs1() const { return flags & flag::kReadsRs1; }
  constexpr bool reads_rs2() const { return flags & flag::kReadsRs2; }
  constexpr bool reads_rs3() const { return flags & flag::kReadsRs3; }
  constexpr bool writes_rd() const { return flags & flag::kWritesRd; }
  constexpr bool rs1_fp() const { return flags & flag::kRs1Fp; }
  constexpr bool rs2_fp() const { return flags & flag::kRs2Fp; }
  constexpr bool rs3_fp() const { return flags & flag::kRs3Fp; }
  constexpr bool rd_fp() const { return flags & flag::kRdFp; }

  constexpr bool is_load() const {
    return exec_class == ExecClass::kLoad;
  }
  constexpr bool is_store() const { return exec_class == ExecClass::kStore; }
  constexpr bool is_branch() const { return exec_class == ExecClass::kBranch; }
  constexpr bool is_jump() const {
    return exec_class == ExecClass::kJal || exec_class == ExecClass::kJalr;
  }
  constexpr bool changes_control_flow() const { return is_branch() || is_jump(); }
  constexpr bool is_fp() const {
    return exec_class == ExecClass::kFpAdd || exec_class == ExecClass::kFpMul ||
           exec_class == ExecClass::kFpDiv || exec_class == ExecClass::kFpFma;
  }
};

/// The full table, indexed by Mnemonic.
std::span<const InstInfo> inst_table();

/// Metadata for one mnemonic.
const InstInfo& info(Mnemonic m);

/// A fully decoded instruction.
struct DecodedInst {
  Mnemonic mnemonic = Mnemonic::kInvalid;
  u32 raw = 0;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  u8 rs3 = 0;
  i64 imm = 0;

  const InstInfo& info() const { return isa::info(mnemonic); }
  bool valid() const { return mnemonic != Mnemonic::kInvalid; }
};

/// Canonical NOP encoding (addi x0, x0, 0).
inline constexpr u32 kNopEncoding = 0x00000013u;

}  // namespace safedm::isa
