#include "safedm/isa/iss.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "safedm/common/check.hpp"
#include "safedm/isa/decode.hpp"

namespace safedm::isa {
namespace {

double as_f64(u64 bits) { return std::bit_cast<double>(bits); }
u64 as_u64(double value) { return std::bit_cast<u64>(value); }

u64 sext32(u64 value) { return static_cast<u64>(static_cast<i64>(static_cast<i32>(value))); }

i64 div_signed(i64 a, i64 b) {
  if (b == 0) return -1;
  if (a == std::numeric_limits<i64>::min() && b == -1) return a;
  return a / b;
}

i64 rem_signed(i64 a, i64 b) {
  if (b == 0) return a;
  if (a == std::numeric_limits<i64>::min() && b == -1) return 0;
  return a % b;
}

i32 div_signed32(i32 a, i32 b) {
  if (b == 0) return -1;
  if (a == std::numeric_limits<i32>::min() && b == -1) return a;
  return a / b;
}

i32 rem_signed32(i32 a, i32 b) {
  if (b == 0) return a;
  if (a == std::numeric_limits<i32>::min() && b == -1) return 0;
  return a % b;
}

i64 fcvt_to_i32(double v) {
  if (std::isnan(v)) return std::numeric_limits<i32>::max();
  if (v >= 2147483648.0) return std::numeric_limits<i32>::max();
  if (v <= -2147483649.0) return std::numeric_limits<i32>::min();
  return static_cast<i64>(static_cast<i32>(std::nearbyint(v)));
}

i64 fcvt_to_i64(double v) {
  if (std::isnan(v)) return std::numeric_limits<i64>::max();
  if (v >= 9223372036854775808.0) return std::numeric_limits<i64>::max();
  if (v < -9223372036854775808.0) return std::numeric_limits<i64>::min();
  return static_cast<i64>(std::nearbyint(v));
}

}  // namespace

void Iss::execute(const DecodedInst& inst, ArchState& s, MemoryPort& mem) {
  if (!inst.valid()) {
    s.halt = HaltReason::kIllegalInst;
    return;
  }

  const u64 pc = s.pc;
  u64 next_pc = pc + 4;
  const u64 a = s.xr(inst.rs1);
  const u64 b = s.xr(inst.rs2);
  const i64 ia = static_cast<i64>(a);
  const i64 ib = static_cast<i64>(b);
  const i64 imm = inst.imm;
  const double fa = as_f64(s.f[inst.rs1]);
  const double fb = as_f64(s.f[inst.rs2]);
  const double fc = as_f64(s.f[inst.rs3]);

  switch (inst.mnemonic) {
    // ---- upper immediates / jumps ------------------------------------------
    case Mnemonic::kLui:
      s.set_x(inst.rd, static_cast<u64>(imm));
      break;
    case Mnemonic::kAuipc:
      s.set_x(inst.rd, pc + static_cast<u64>(imm));
      break;
    case Mnemonic::kJal:
      s.set_x(inst.rd, pc + 4);
      next_pc = pc + static_cast<u64>(imm);
      break;
    case Mnemonic::kJalr:
      s.set_x(inst.rd, pc + 4);
      next_pc = (a + static_cast<u64>(imm)) & ~u64{1};
      break;

    // ---- branches ------------------------------------------------------------
    case Mnemonic::kBeq:
      if (a == b) next_pc = pc + static_cast<u64>(imm);
      break;
    case Mnemonic::kBne:
      if (a != b) next_pc = pc + static_cast<u64>(imm);
      break;
    case Mnemonic::kBlt:
      if (ia < ib) next_pc = pc + static_cast<u64>(imm);
      break;
    case Mnemonic::kBge:
      if (ia >= ib) next_pc = pc + static_cast<u64>(imm);
      break;
    case Mnemonic::kBltu:
      if (a < b) next_pc = pc + static_cast<u64>(imm);
      break;
    case Mnemonic::kBgeu:
      if (a >= b) next_pc = pc + static_cast<u64>(imm);
      break;

    // ---- loads ---------------------------------------------------------------
    case Mnemonic::kLb:
      s.set_x(inst.rd, static_cast<u64>(sign_extend(mem.load(a + imm, 1), 8)));
      break;
    case Mnemonic::kLh:
      s.set_x(inst.rd, static_cast<u64>(sign_extend(mem.load(a + imm, 2), 16)));
      break;
    case Mnemonic::kLw:
      s.set_x(inst.rd, static_cast<u64>(sign_extend(mem.load(a + imm, 4), 32)));
      break;
    case Mnemonic::kLd:
      s.set_x(inst.rd, mem.load(a + imm, 8));
      break;
    case Mnemonic::kLbu:
      s.set_x(inst.rd, mem.load(a + imm, 1));
      break;
    case Mnemonic::kLhu:
      s.set_x(inst.rd, mem.load(a + imm, 2));
      break;
    case Mnemonic::kLwu:
      s.set_x(inst.rd, mem.load(a + imm, 4));
      break;
    case Mnemonic::kFld:
      s.f[inst.rd] = mem.load(a + imm, 8);
      break;

    // ---- stores ----------------------------------------------------------------
    case Mnemonic::kSb:
      mem.store(a + imm, b, 1);
      break;
    case Mnemonic::kSh:
      mem.store(a + imm, b, 2);
      break;
    case Mnemonic::kSw:
      mem.store(a + imm, b, 4);
      break;
    case Mnemonic::kSd:
      mem.store(a + imm, b, 8);
      break;
    case Mnemonic::kFsd:
      mem.store(a + imm, s.f[inst.rs2], 8);
      break;

    // ---- immediate ALU -----------------------------------------------------------
    case Mnemonic::kAddi:
      s.set_x(inst.rd, a + static_cast<u64>(imm));
      break;
    case Mnemonic::kSlti:
      s.set_x(inst.rd, ia < imm ? 1 : 0);
      break;
    case Mnemonic::kSltiu:
      s.set_x(inst.rd, a < static_cast<u64>(imm) ? 1 : 0);
      break;
    case Mnemonic::kXori:
      s.set_x(inst.rd, a ^ static_cast<u64>(imm));
      break;
    case Mnemonic::kOri:
      s.set_x(inst.rd, a | static_cast<u64>(imm));
      break;
    case Mnemonic::kAndi:
      s.set_x(inst.rd, a & static_cast<u64>(imm));
      break;
    case Mnemonic::kSlli:
      s.set_x(inst.rd, a << (imm & 63));
      break;
    case Mnemonic::kSrli:
      s.set_x(inst.rd, a >> (imm & 63));
      break;
    case Mnemonic::kSrai:
      s.set_x(inst.rd, static_cast<u64>(ia >> (imm & 63)));
      break;
    case Mnemonic::kAddiw:
      s.set_x(inst.rd, sext32(a + static_cast<u64>(imm)));
      break;
    case Mnemonic::kSlliw:
      s.set_x(inst.rd, sext32(a << (imm & 31)));
      break;
    case Mnemonic::kSrliw:
      s.set_x(inst.rd, sext32(static_cast<u32>(a) >> (imm & 31)));
      break;
    case Mnemonic::kSraiw:
      s.set_x(inst.rd, static_cast<u64>(static_cast<i64>(static_cast<i32>(a) >> (imm & 31))));
      break;

    // ---- register-register ALU -----------------------------------------------------
    case Mnemonic::kAdd:
      s.set_x(inst.rd, a + b);
      break;
    case Mnemonic::kSub:
      s.set_x(inst.rd, a - b);
      break;
    case Mnemonic::kSll:
      s.set_x(inst.rd, a << (b & 63));
      break;
    case Mnemonic::kSlt:
      s.set_x(inst.rd, ia < ib ? 1 : 0);
      break;
    case Mnemonic::kSltu:
      s.set_x(inst.rd, a < b ? 1 : 0);
      break;
    case Mnemonic::kXor:
      s.set_x(inst.rd, a ^ b);
      break;
    case Mnemonic::kSrl:
      s.set_x(inst.rd, a >> (b & 63));
      break;
    case Mnemonic::kSra:
      s.set_x(inst.rd, static_cast<u64>(ia >> (b & 63)));
      break;
    case Mnemonic::kOr:
      s.set_x(inst.rd, a | b);
      break;
    case Mnemonic::kAnd:
      s.set_x(inst.rd, a & b);
      break;
    case Mnemonic::kAddw:
      s.set_x(inst.rd, sext32(a + b));
      break;
    case Mnemonic::kSubw:
      s.set_x(inst.rd, sext32(a - b));
      break;
    case Mnemonic::kSllw:
      s.set_x(inst.rd, sext32(a << (b & 31)));
      break;
    case Mnemonic::kSrlw:
      s.set_x(inst.rd, sext32(static_cast<u32>(a) >> (b & 31)));
      break;
    case Mnemonic::kSraw:
      s.set_x(inst.rd, static_cast<u64>(static_cast<i64>(static_cast<i32>(a) >> (b & 31))));
      break;

    // ---- RV64M ------------------------------------------------------------------
    case Mnemonic::kMul:
      s.set_x(inst.rd, a * b);
      break;
    case Mnemonic::kMulh:
      s.set_x(inst.rd,
              static_cast<u64>((static_cast<__int128>(ia) * static_cast<__int128>(ib)) >> 64));
      break;
    case Mnemonic::kMulhsu:
      s.set_x(inst.rd, static_cast<u64>(
                           (static_cast<__int128>(ia) * static_cast<unsigned __int128>(b)) >> 64));
      break;
    case Mnemonic::kMulhu:
      s.set_x(inst.rd, static_cast<u64>((static_cast<unsigned __int128>(a) *
                                         static_cast<unsigned __int128>(b)) >>
                                        64));
      break;
    case Mnemonic::kDiv:
      s.set_x(inst.rd, static_cast<u64>(div_signed(ia, ib)));
      break;
    case Mnemonic::kDivu:
      s.set_x(inst.rd, b == 0 ? ~u64{0} : a / b);
      break;
    case Mnemonic::kRem:
      s.set_x(inst.rd, static_cast<u64>(rem_signed(ia, ib)));
      break;
    case Mnemonic::kRemu:
      s.set_x(inst.rd, b == 0 ? a : a % b);
      break;
    case Mnemonic::kMulw:
      s.set_x(inst.rd, sext32(a * b));
      break;
    case Mnemonic::kDivw:
      s.set_x(inst.rd, static_cast<u64>(static_cast<i64>(
                           div_signed32(static_cast<i32>(a), static_cast<i32>(b)))));
      break;
    case Mnemonic::kDivuw: {
      const u32 ua = static_cast<u32>(a), ub = static_cast<u32>(b);
      s.set_x(inst.rd, sext32(ub == 0 ? ~u32{0} : ua / ub));
      break;
    }
    case Mnemonic::kRemw:
      s.set_x(inst.rd, static_cast<u64>(static_cast<i64>(
                           rem_signed32(static_cast<i32>(a), static_cast<i32>(b)))));
      break;
    case Mnemonic::kRemuw: {
      const u32 ua = static_cast<u32>(a), ub = static_cast<u32>(b);
      s.set_x(inst.rd, sext32(ub == 0 ? ua : ua % ub));
      break;
    }

    // ---- system -------------------------------------------------------------------
    case Mnemonic::kFence:
      break;
    case Mnemonic::kEcall:
      s.halt = HaltReason::kEcall;
      break;
    case Mnemonic::kEbreak:
      s.halt = HaltReason::kEbreak;
      break;

    // ---- RV64D --------------------------------------------------------------------
    case Mnemonic::kFaddD:
      s.f[inst.rd] = as_u64(fa + fb);
      break;
    case Mnemonic::kFsubD:
      s.f[inst.rd] = as_u64(fa - fb);
      break;
    case Mnemonic::kFmulD:
      s.f[inst.rd] = as_u64(fa * fb);
      break;
    case Mnemonic::kFdivD:
      s.f[inst.rd] = as_u64(fa / fb);
      break;
    case Mnemonic::kFsqrtD:
      s.f[inst.rd] = as_u64(std::sqrt(fa));
      break;
    case Mnemonic::kFsgnjD:
      s.f[inst.rd] = (s.f[inst.rs1] & ~(u64{1} << 63)) | (s.f[inst.rs2] & (u64{1} << 63));
      break;
    case Mnemonic::kFsgnjnD:
      s.f[inst.rd] = (s.f[inst.rs1] & ~(u64{1} << 63)) | (~s.f[inst.rs2] & (u64{1} << 63));
      break;
    case Mnemonic::kFsgnjxD:
      s.f[inst.rd] = s.f[inst.rs1] ^ (s.f[inst.rs2] & (u64{1} << 63));
      break;
    case Mnemonic::kFminD:
      s.f[inst.rd] = as_u64(std::fmin(fa, fb));
      break;
    case Mnemonic::kFmaxD:
      s.f[inst.rd] = as_u64(std::fmax(fa, fb));
      break;
    case Mnemonic::kFcvtWD:
      s.set_x(inst.rd, static_cast<u64>(fcvt_to_i32(fa)));
      break;
    case Mnemonic::kFcvtLD:
      s.set_x(inst.rd, static_cast<u64>(fcvt_to_i64(fa)));
      break;
    case Mnemonic::kFcvtDW:
      s.f[inst.rd] = as_u64(static_cast<double>(static_cast<i32>(a)));
      break;
    case Mnemonic::kFcvtDL:
      s.f[inst.rd] = as_u64(static_cast<double>(ia));
      break;
    case Mnemonic::kFeqD:
      s.set_x(inst.rd, fa == fb ? 1 : 0);
      break;
    case Mnemonic::kFltD:
      s.set_x(inst.rd, fa < fb ? 1 : 0);
      break;
    case Mnemonic::kFleD:
      s.set_x(inst.rd, fa <= fb ? 1 : 0);
      break;
    case Mnemonic::kFmvXD:
      s.set_x(inst.rd, s.f[inst.rs1]);
      break;
    case Mnemonic::kFmvDX:
      s.f[inst.rd] = a;
      break;
    case Mnemonic::kFmaddD:
      s.f[inst.rd] = as_u64(std::fma(fa, fb, fc));
      break;
    case Mnemonic::kFmsubD:
      s.f[inst.rd] = as_u64(std::fma(fa, fb, -fc));
      break;
    case Mnemonic::kFnmsubD:
      s.f[inst.rd] = as_u64(std::fma(-fa, fb, fc));
      break;
    case Mnemonic::kFnmaddD:
      s.f[inst.rd] = as_u64(-std::fma(fa, fb, fc));
      break;

    case Mnemonic::kInvalid:
      s.halt = HaltReason::kIllegalInst;
      return;
  }

  s.pc = next_pc;
  s.instret += 1;
}

bool Iss::step() {
  if (state_.halted()) return false;
  const u32 raw = static_cast<u32>(mem_.load(state_.pc, 4));
  const DecodedInst inst = decode(raw);
  execute(inst, state_, mem_);
  return !state_.halted();
}

u64 Iss::run(u64 max_instructions) {
  const u64 start = state_.instret;
  while (state_.instret - start < max_instructions && step()) {
  }
  return state_.instret - start;
}

}  // namespace safedm::isa
