#include "safedm/isa/decode.hpp"

#include <array>
#include <vector>

namespace safedm::isa {
namespace {

// Candidate mnemonics bucketed by the 7-bit major opcode so decode is a
// short scan instead of a walk over the whole table.
struct OpcodeIndex {
  std::array<std::vector<Mnemonic>, 128> buckets;

  OpcodeIndex() {
    for (const InstInfo& ii : inst_table()) {
      const u32 opcode = ii.match & 0x7Fu;
      buckets[opcode].push_back(ii.mnemonic);
    }
  }
};

const OpcodeIndex& opcode_index() {
  static const OpcodeIndex index;
  return index;
}

i64 extract_imm(Format fmt, u32 raw) {
  switch (fmt) {
    case Format::kI:
      return sign_extend(bits(raw, 31, 20), 12);
    case Format::kISh64:
      return static_cast<i64>(bits(raw, 25, 20));
    case Format::kISh32:
      return static_cast<i64>(bits(raw, 24, 20));
    case Format::kS:
      return sign_extend((bits(raw, 31, 25) << 5) | bits(raw, 11, 7), 12);
    case Format::kB:
      return sign_extend((bit(raw, 31) << 12) | (bit(raw, 7) << 11) |
                             (bits(raw, 30, 25) << 5) | (bits(raw, 11, 8) << 1),
                         13);
    case Format::kU:
      // Stored pre-shifted: the architectural value added/loaded is imm<<12.
      return sign_extend(bits(raw, 31, 12), 20) << 12;
    case Format::kJ:
      return sign_extend((bit(raw, 31) << 20) | (bits(raw, 19, 12) << 12) |
                             (bit(raw, 20) << 11) | (bits(raw, 30, 21) << 1),
                         21);
    case Format::kR:
    case Format::kRFp:
    case Format::kRFp1:
    case Format::kR4:
      return 0;
  }
  return 0;
}

}  // namespace

DecodedInst decode(u32 raw) {
  DecodedInst inst;
  inst.raw = raw;
  for (Mnemonic m : opcode_index().buckets[raw & 0x7Fu]) {
    const InstInfo& ii = info(m);
    if ((raw & ii.mask) != ii.match) continue;
    inst.mnemonic = m;
    inst.rd = static_cast<u8>(bits(raw, 11, 7));
    inst.rs1 = static_cast<u8>(bits(raw, 19, 15));
    inst.rs2 = static_cast<u8>(bits(raw, 24, 20));
    inst.rs3 = static_cast<u8>(bits(raw, 31, 27));
    inst.imm = extract_imm(ii.format, raw);
    return inst;
  }
  return inst;  // kInvalid
}

}  // namespace safedm::isa
