#include "safedm/isa/inst.hpp"

#include <array>

#include "safedm/common/check.hpp"

namespace safedm::isa {
namespace {

constexpr std::array<InstInfo, kMnemonicCount + 1> kTable = {{
#define R1 ::safedm::isa::flag::kReadsRs1
#define R2 ::safedm::isa::flag::kReadsRs2
#define R3 ::safedm::isa::flag::kReadsRs3
#define WD ::safedm::isa::flag::kWritesRd
#define F1 ::safedm::isa::flag::kRs1Fp
#define F2 ::safedm::isa::flag::kRs2Fp
#define F3 ::safedm::isa::flag::kRs3Fp
#define FD ::safedm::isa::flag::kRdFp
#define SAFEDM_INST(enum_name, str, fmt, match, mask, exec, flags_) \
  InstInfo{Mnemonic::enum_name, str, fmt, match, mask, exec, static_cast<u16>(flags_)},
#include "safedm/isa/inst_table.inc"
#undef SAFEDM_INST
#undef R1
#undef R2
#undef R3
#undef WD
#undef F1
#undef F2
#undef F3
#undef FD
    InstInfo{Mnemonic::kInvalid, "invalid", Format::kI, 0, 0, ExecClass::kAlu, 0},
}};

// Every entry's position must equal its mnemonic value so info() can index.
constexpr bool table_is_consistent() {
  for (std::size_t i = 0; i < kTable.size(); ++i)
    if (static_cast<std::size_t>(kTable[i].mnemonic) != i) return false;
  return true;
}
static_assert(table_is_consistent());

}  // namespace

std::span<const InstInfo> inst_table() {
  return {kTable.data(), kMnemonicCount};
}

const InstInfo& info(Mnemonic m) {
  return kTable[static_cast<std::size_t>(m)];
}

}  // namespace safedm::isa
