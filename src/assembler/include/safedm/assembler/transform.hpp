// Program-level decorrelation transforms (DME-style software diversity).
//
// The register-allocation shuffle renames the scratch registers of an
// assembled program through a seed-derived bijection. Renaming is purely
// syntactic: every definition and every use move together, so values,
// hazard relations, pipeline timing, and commit counts are identical to
// the original program — the transform injects *instruction-signature*
// diversity (different encodings in every pipeline stage) without
// touching data-signature content. Determinism contract (TESTING.md):
// the permutation is a pure function of the seed; seed 0 is the identity
// transform and returns the program unchanged.
//
// Registers with an entry/ABI meaning are never remapped: x0 (zero),
// ra/sp/gp/tp (x1..x4), and a0 (x10, the data-segment base argument).
// Everything else (t0..t6, s0..s11, a1..a7) is fair game, as are all 32
// FP registers (no FP entry arguments exist in this convention).
#pragma once

#include <array>

#include "safedm/assembler/assembler.hpp"

namespace safedm::assembler {

/// A register renaming: old index -> new index, identity outside the
/// shuffled class. Bijective by construction.
struct RegisterShuffle {
  std::array<u8, 32> int_map;
  std::array<u8, 32> fp_map;

  bool identity() const;
};

/// Derive the (deterministic) renaming for `seed`; seed 0 is the identity.
RegisterShuffle make_register_shuffle(u32 seed);

/// Rewrite one instruction word under the renaming. Register fields are
/// located via isa::decode and only rewritten when the instruction's
/// operand flags say the field holds a register (store/branch [11:7]
/// immediates and FP sub-op selector fields are left untouched).
/// Invalid encodings pass through unchanged.
u32 remap_instruction(u32 raw, const RegisterShuffle& shuffle);

/// Apply the seed's renaming to a whole program (text only; data/bss and
/// the entry convention are unchanged). Seed 0 returns a plain copy.
Program shuffle_registers(const Program& program, u32 seed);

}  // namespace safedm::assembler
