// RISC-V ABI register aliases for workload authoring.
#pragma once

#include "safedm/isa/encode.hpp"

namespace safedm::assembler {

using Reg = isa::enc::Reg;

inline constexpr Reg ZERO = 0;
inline constexpr Reg RA = 1;
inline constexpr Reg SP = 2;
inline constexpr Reg GP = 3;
inline constexpr Reg TP = 4;
inline constexpr Reg T0 = 5, T1 = 6, T2 = 7;
inline constexpr Reg S0 = 8, S1 = 9;
inline constexpr Reg A0 = 10, A1 = 11, A2 = 12, A3 = 13, A4 = 14, A5 = 15, A6 = 16, A7 = 17;
inline constexpr Reg S2 = 18, S3 = 19, S4 = 20, S5 = 21, S6 = 22, S7 = 23, S8 = 24, S9 = 25,
                     S10 = 26, S11 = 27;
inline constexpr Reg T3 = 28, T4 = 29, T5 = 30, T6 = 31;

// FP registers (fN); same numeric space, distinct register file.
inline constexpr Reg FT0 = 0, FT1 = 1, FT2 = 2, FT3 = 3, FT4 = 4, FT5 = 5, FT6 = 6, FT7 = 7;
inline constexpr Reg FS0 = 8, FS1 = 9;
inline constexpr Reg FA0 = 10, FA1 = 11, FA2 = 12, FA3 = 13, FA4 = 14, FA5 = 15, FA6 = 16,
                     FA7 = 17;
inline constexpr Reg FS2 = 18, FS3 = 19, FS4 = 20, FS5 = 21, FS6 = 22, FS7 = 23, FS8 = 24,
                     FS9 = 25, FS10 = 26, FS11 = 27;
inline constexpr Reg FT8 = 28, FT9 = 29, FT10 = 30, FT11 = 31;

}  // namespace safedm::assembler
