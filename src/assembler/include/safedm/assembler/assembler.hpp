// Embedded RV64 assembler: workloads are authored in C++ against this
// builder (no offline cross-compiler is available), producing loadable
// program images.
//
// Conventions shared with the SoC loader:
//   - a0 holds the core's data-segment base at reset (redundant processes
//     get distinct bases — the paper's "different address spaces").
//   - sp holds the top of a per-core stack.
//   - programs terminate with `ecall`.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "safedm/common/bits.hpp"
#include "safedm/isa/encode.hpp"
#include "safedm/assembler/regs.hpp"

namespace safedm::assembler {

/// Opaque label handle; create with Assembler::new_label, place with bind.
class Label {
 public:
  Label() = default;

 private:
  friend class Assembler;
  explicit Label(u32 id) : id_(id) {}
  u32 id_ = ~u32{0};
};

/// A fully assembled program image (position-independent apart from the
/// text base chosen at load time; data is addressed via a0).
struct Program {
  std::string name;
  std::vector<u32> text;     // instruction words, entry at text[0]
  std::vector<u8> data;      // initial data-segment image
  u64 bss_bytes = 0;         // zero-initialized space after data
  u64 stack_bytes = 4096;    // per-core stack to reserve

  u64 data_segment_bytes() const { return data.size() + bss_bytes; }
};

/// Builder for the data segment. Returned offsets are relative to the
/// segment base (a0 at run time).
class DataBuilder {
 public:
  u64 add_bytes(std::span<const u8> bytes, u64 align = 8);
  u64 add_u8(u8 v) { return add_pod(v, 1); }
  u64 add_u16(u16 v) { return add_pod(v, 2); }
  u64 add_u32(u32 v) { return add_pod(v, 4); }
  u64 add_u64(u64 v) { return add_pod(v, 8); }
  u64 add_i64(i64 v) { return add_pod(v, 8); }
  u64 add_f64(double v) { return add_pod(v, 8); }
  u64 add_u32_array(std::span<const u32> values);
  u64 add_i32_array(std::span<const i32> values);
  u64 add_u64_array(std::span<const u64> values);
  u64 add_f64_array(std::span<const double> values);

  /// Reserve zero-initialized space (allocated in the image for simplicity).
  u64 reserve(u64 bytes, u64 align = 8);

  u64 size() const { return static_cast<u64>(bytes_.size()); }
  std::vector<u8> take() { return std::move(bytes_); }

 private:
  template <typename T>
  u64 add_pod(T v, u64 align) {
    u8 raw[sizeof(T)];
    __builtin_memcpy(raw, &v, sizeof(T));
    return add_bytes({raw, sizeof(T)}, align);
  }

  std::vector<u8> bytes_;
};

/// The instruction-stream builder.
class Assembler {
 public:
  /// Emit a raw instruction word (use with safedm::isa::enc builders):
  ///   a(enc::add(T0, T1, T2));
  void operator()(u32 word) { text_.push_back(word); }

  u64 pc() const { return text_.size() * 4; }

  // ---- labels and control flow -------------------------------------------
  Label new_label();
  void bind(Label label);

  void beq(Reg rs1, Reg rs2, Label target);
  void bne(Reg rs1, Reg rs2, Label target);
  void blt(Reg rs1, Reg rs2, Label target);
  void bge(Reg rs1, Reg rs2, Label target);
  void bltu(Reg rs1, Reg rs2, Label target);
  void bgeu(Reg rs1, Reg rs2, Label target);
  /// ble/bgt style helpers (operand-swapped blt/bge).
  void ble(Reg rs1, Reg rs2, Label target) { bge(rs2, rs1, target); }
  void bgt(Reg rs1, Reg rs2, Label target) { blt(rs2, rs1, target); }
  void beqz(Reg rs1, Label target) { beq(rs1, ZERO, target); }
  void bnez(Reg rs1, Label target) { bne(rs1, ZERO, target); }
  void blez(Reg rs1, Label target) { ble(rs1, ZERO, target); }
  void bgtz(Reg rs1, Label target) { bgt(rs1, ZERO, target); }

  void jal(Reg rd, Label target);
  void j(Label target) { jal(ZERO, target); }
  void call(Label target) { jal(RA, target); }
  void ret() { (*this)(isa::enc::jalr(ZERO, RA, 0)); }

  // ---- pseudo-instructions --------------------------------------------------
  void li(Reg rd, i64 value);           // arbitrary 64-bit constant
  void mv(Reg rd, Reg rs) { (*this)(isa::enc::addi(rd, rs, 0)); }
  void neg(Reg rd, Reg rs) { (*this)(isa::enc::sub(rd, ZERO, rs)); }
  void not_(Reg rd, Reg rs) { (*this)(isa::enc::xori(rd, rs, -1)); }
  void seqz(Reg rd, Reg rs) { (*this)(isa::enc::sltiu(rd, rs, 1)); }
  void snez(Reg rd, Reg rs) { (*this)(isa::enc::sltu(rd, ZERO, rs)); }
  void fmv_d(Reg frd, Reg frs) { (*this)(isa::enc::fsgnj_d(frd, frs, frs)); }
  void fneg_d(Reg frd, Reg frs) { (*this)(isa::enc::fsgnjn_d(frd, frs, frs)); }
  void fabs_d(Reg frd, Reg frs) { (*this)(isa::enc::fsgnjx_d(frd, frs, frs)); }
  void nop() { (*this)(isa::enc::nop()); }
  void nops(unsigned count);

  /// rd = rs + imm for any 64-bit imm (expands through a scratch register
  /// when imm does not fit 12 bits; scratch defaults to t6).
  void add_imm(Reg rd, Reg rs, i64 imm, Reg scratch = T6);

  /// rd = data-segment address of `offset` (a0-relative by convention).
  void lea_data(Reg rd, u64 offset, Reg base = A0, Reg scratch = T6) {
    add_imm(rd, base, static_cast<i64>(offset), scratch);
  }

  /// Finish: resolve all label fixups and produce the image.
  Program assemble(std::string name, DataBuilder data = {});

 private:
  enum class FixupKind { kBranch, kJal };
  struct Fixup {
    std::size_t index;  // instruction slot in text_
    FixupKind kind;
    u32 label;
    u32 raw;  // instruction with zero offset; offset patched in
  };

  void branch_fixup(u32 raw_zero_offset, Label target, FixupKind kind);

  std::vector<u32> text_;
  std::vector<i64> label_offsets_;  // -1 = unbound
  std::vector<Fixup> fixups_;
};

}  // namespace safedm::assembler
