#include "safedm/assembler/transform.hpp"

#include <algorithm>

#include "safedm/common/rng.hpp"
#include "safedm/isa/decode.hpp"

namespace safedm::assembler {

namespace {

/// Integer registers eligible for renaming: everything without an
/// entry/ABI meaning (see transform.hpp). Kept sorted so the permutation
/// is stable against incidental reorderings of this table.
constexpr std::array<u8, 26> kIntClass = {
    5,  6,  7,                               // t0..t2
    8,  9,                                   // s0, s1
    11, 12, 13, 14, 15, 16, 17,              // a1..a7 (a0 carries the data base)
    18, 19, 20, 21, 22, 23, 24, 25, 26, 27,  // s2..s11
    28, 29, 30, 31,                          // t3..t6
};

template <std::size_t N>
void shuffle_class(std::array<u8, 32>& map, const std::array<u8, N>& cls, Xoshiro256& rng) {
  std::array<u8, N> perm = cls;
  // Fisher-Yates; rng.below keeps the draw sequence a pure function of
  // the seed, independent of any library shuffle implementation.
  for (std::size_t i = N - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i + 1));
    std::swap(perm[i], perm[j]);
  }
  for (std::size_t i = 0; i < N; ++i) map[cls[i]] = perm[i];
}

}  // namespace

bool RegisterShuffle::identity() const {
  for (unsigned r = 0; r < 32; ++r)
    if (int_map[r] != r || fp_map[r] != r) return false;
  return true;
}

RegisterShuffle make_register_shuffle(u32 seed) {
  RegisterShuffle shuffle;
  for (unsigned r = 0; r < 32; ++r) {
    shuffle.int_map[r] = static_cast<u8>(r);
    shuffle.fp_map[r] = static_cast<u8>(r);
  }
  if (seed == 0) return shuffle;
  Xoshiro256 rng(0x5AFED0005871FFULL ^ seed);
  shuffle_class(shuffle.int_map, kIntClass, rng);
  // All 32 FP registers are scratch at entry (no FP arguments), so the FP
  // permutation covers the whole file.
  std::array<u8, 32> fp_class{};
  for (unsigned r = 0; r < 32; ++r) fp_class[r] = static_cast<u8>(r);
  shuffle_class(shuffle.fp_map, fp_class, rng);
  return shuffle;
}

u32 remap_instruction(u32 raw, const RegisterShuffle& shuffle) {
  const isa::DecodedInst inst = isa::decode(raw);
  if (!inst.valid()) return raw;
  const isa::InstInfo& info = inst.info();
  u32 out = raw;
  const auto set_field = [&out](unsigned lsb, u8 reg) {
    out = (out & ~(0x1Fu << lsb)) | (static_cast<u32>(reg) << lsb);
  };
  // Flag-gated: a field is only rewritten when this mnemonic actually
  // carries a register there. S/B-format [11:7] immediates, FP sub-op
  // selectors (fcvt's rs2 field), and system-instruction zero fields all
  // have the corresponding flag clear and keep their bits.
  if (info.writes_rd()) set_field(7, (info.rd_fp() ? shuffle.fp_map : shuffle.int_map)[inst.rd]);
  if (info.reads_rs1())
    set_field(15, (info.rs1_fp() ? shuffle.fp_map : shuffle.int_map)[inst.rs1]);
  if (info.reads_rs2())
    set_field(20, (info.rs2_fp() ? shuffle.fp_map : shuffle.int_map)[inst.rs2]);
  if (info.reads_rs3())
    set_field(27, (info.rs3_fp() ? shuffle.fp_map : shuffle.int_map)[inst.rs3]);
  return out;
}

Program shuffle_registers(const Program& program, u32 seed) {
  if (seed == 0) return program;
  const RegisterShuffle shuffle = make_register_shuffle(seed);
  Program out = program;
  for (u32& word : out.text) word = remap_instruction(word, shuffle);
  return out;
}

}  // namespace safedm::assembler
