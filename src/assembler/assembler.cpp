#include "safedm/assembler/assembler.hpp"

#include <limits>

#include "safedm/common/check.hpp"

namespace safedm::assembler {

namespace enc = isa::enc;

// ---- DataBuilder -------------------------------------------------------------

u64 DataBuilder::add_bytes(std::span<const u8> bytes, u64 align) {
  SAFEDM_CHECK(is_pow2(align));
  while (bytes_.size() % align != 0) bytes_.push_back(0);
  const u64 offset = bytes_.size();
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  return offset;
}

u64 DataBuilder::add_u32_array(std::span<const u32> values) {
  return add_bytes({reinterpret_cast<const u8*>(values.data()), values.size() * 4}, 8);
}

u64 DataBuilder::add_i32_array(std::span<const i32> values) {
  return add_bytes({reinterpret_cast<const u8*>(values.data()), values.size() * 4}, 8);
}

u64 DataBuilder::add_u64_array(std::span<const u64> values) {
  return add_bytes({reinterpret_cast<const u8*>(values.data()), values.size() * 8}, 8);
}

u64 DataBuilder::add_f64_array(std::span<const double> values) {
  return add_bytes({reinterpret_cast<const u8*>(values.data()), values.size() * 8}, 8);
}

u64 DataBuilder::reserve(u64 bytes, u64 align) {
  SAFEDM_CHECK(is_pow2(align));
  while (bytes_.size() % align != 0) bytes_.push_back(0);
  const u64 offset = bytes_.size();
  bytes_.insert(bytes_.end(), bytes, 0);
  return offset;
}

// ---- Assembler ---------------------------------------------------------------

Label Assembler::new_label() {
  label_offsets_.push_back(-1);
  return Label(static_cast<u32>(label_offsets_.size() - 1));
}

void Assembler::bind(Label label) {
  SAFEDM_CHECK_MSG(label.id_ < label_offsets_.size(), "bind of unknown label");
  SAFEDM_CHECK_MSG(label_offsets_[label.id_] < 0, "label bound twice");
  label_offsets_[label.id_] = static_cast<i64>(pc());
}

void Assembler::branch_fixup(u32 raw_zero_offset, Label target, FixupKind kind) {
  SAFEDM_CHECK_MSG(target.id_ < label_offsets_.size(), "branch to unknown label");
  fixups_.push_back(Fixup{text_.size(), kind, target.id_, raw_zero_offset});
  text_.push_back(raw_zero_offset);  // patched in assemble()
}

void Assembler::beq(Reg rs1, Reg rs2, Label t) { branch_fixup(enc::beq(rs1, rs2, 0), t, FixupKind::kBranch); }
void Assembler::bne(Reg rs1, Reg rs2, Label t) { branch_fixup(enc::bne(rs1, rs2, 0), t, FixupKind::kBranch); }
void Assembler::blt(Reg rs1, Reg rs2, Label t) { branch_fixup(enc::blt(rs1, rs2, 0), t, FixupKind::kBranch); }
void Assembler::bge(Reg rs1, Reg rs2, Label t) { branch_fixup(enc::bge(rs1, rs2, 0), t, FixupKind::kBranch); }
void Assembler::bltu(Reg rs1, Reg rs2, Label t) { branch_fixup(enc::bltu(rs1, rs2, 0), t, FixupKind::kBranch); }
void Assembler::bgeu(Reg rs1, Reg rs2, Label t) { branch_fixup(enc::bgeu(rs1, rs2, 0), t, FixupKind::kBranch); }

void Assembler::jal(Reg rd, Label t) { branch_fixup(enc::jal(rd, 0), t, FixupKind::kJal); }

void Assembler::li(Reg rd, i64 value) {
  if (value >= -2048 && value <= 2047) {
    (*this)(enc::addi(rd, ZERO, value));
    return;
  }
  if (value >= std::numeric_limits<i32>::min() && value <= std::numeric_limits<i32>::max()) {
    const i64 hi20 = (value + 0x800) >> 12;
    const i64 lo12 = value - (hi20 << 12);
    (*this)(enc::lui(rd, hi20));
    if (lo12 != 0) (*this)(enc::addiw(rd, rd, lo12));
    return;
  }
  const i64 lo12 = sign_extend(static_cast<u64>(value) & 0xFFF, 12);
  li(rd, (value - lo12) >> 12);
  (*this)(enc::slli(rd, rd, 12));
  if (lo12 != 0) (*this)(enc::addi(rd, rd, lo12));
}

void Assembler::nops(unsigned count) {
  for (unsigned i = 0; i < count; ++i) nop();
}

void Assembler::add_imm(Reg rd, Reg rs, i64 imm, Reg scratch) {
  if (imm >= -2048 && imm <= 2047) {
    (*this)(enc::addi(rd, rs, imm));
    return;
  }
  SAFEDM_CHECK_MSG(scratch != rs, "add_imm scratch register aliases the source");
  li(scratch, imm);
  (*this)(enc::add(rd, rs, scratch));
}

Program Assembler::assemble(std::string name, DataBuilder data) {
  for (const Fixup& fixup : fixups_) {
    const i64 target = label_offsets_[fixup.label];
    SAFEDM_CHECK_MSG(target >= 0, "unbound label referenced in " << name);
    const i64 offset = target - static_cast<i64>(fixup.index * 4);
    // Re-derive the offset bit pattern by packing with zero registers; the
    // register/opcode fields are already present in fixup.raw.
    const u32 offset_bits = (fixup.kind == FixupKind::kBranch)
                                ? isa::enc::detail::pack_b(0, 0, 0, offset)
                                : isa::enc::detail::pack_j(0, 0, offset);
    text_[fixup.index] = fixup.raw | offset_bits;
  }
  Program program;
  program.name = std::move(name);
  program.text = std::move(text_);
  program.data = data.take();
  SAFEDM_CHECK_MSG(!program.text.empty(), "empty program");
  return program;
}

}  // namespace safedm::assembler
