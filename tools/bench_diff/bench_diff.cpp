// bench_diff — gate a fresh BENCH_*.json against a committed baseline.
//
// Usage:
//   bench_diff <baseline.json> <current.json> [--tolerance=0.2]
//              [--keys=speedups,speedup]
//
// Both files are flattened into dotted numeric keys ("speedups.raw_batched
// _vs_legacy", "modes.raw_batched.cycles_per_sec", ...). Every selected key
// (one that equals a --keys entry or sits underneath it) present in the
// baseline must exist in the current file and must not have regressed by
// more than the tolerance: current >= baseline * (1 - tolerance). Higher
// is better for every gated metric in this repo (speedup ratios, cycles
// per second), so only the downward direction fails.
//
// The default key set gates only machine-independent ratios: absolute
// cycles/sec move with the host, but "the SIMD batched path is Nx the
// pre-PR path" should survive any machine, so a committed baseline stays
// meaningful across hardware. Exit codes: 0 ok, 1 regression (or a gated
// key missing from the current file), 2 usage/parse errors.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---- minimal JSON reader ---------------------------------------------------
//
// Just enough for the bench JSON the repo's JsonWriter emits (objects,
// arrays, strings, numbers, bools, null). Numeric leaves land in `out`
// keyed by dotted path; everything else is parsed and discarded.

class JsonFlattener {
 public:
  JsonFlattener(const std::string& text, std::map<std::string, double>& out)
      : text_(text), out_(out) {}

  bool run() {
    skip_ws();
    if (!parse_value("")) return false;
    skip_ws();
    return pos_ == text_.size();  // trailing garbage is a parse error
  }

  std::string error() const { return error_; }

 private:
  bool fail(const std::string& what) {
    std::ostringstream os;
    os << what << " at byte " << pos_;
    error_ = os.str();
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool parse_value(const std::string& path) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(path);
    if (c == '[') return parse_array(path);
    if (c == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (c == 't' || c == 'f' || c == 'n') return parse_keyword();
    return parse_number(path);
  }

  bool parse_object(const std::string& path) {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key))
        return fail("expected object key");
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      if (!parse_value(path.empty() ? key : path + "." + key)) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(const std::string& path) {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    unsigned index = 0;
    while (true) {
      if (!parse_value(path + "." + std::to_string(index++))) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':
            // Bench keys are ASCII; skip the 4 hex digits, keep a marker.
            pos_ += 4 <= text_.size() - pos_ ? 4 : text_.size() - pos_;
            out += '?';
            break;
          default: out += esc; break;
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_keyword() {
    for (const char* kw : {"true", "false", "null"}) {
      const std::size_t len = std::strlen(kw);
      if (text_.compare(pos_, len, kw) == 0) {
        pos_ += len;
        return true;
      }
    }
    return fail("bad keyword");
  }

  bool parse_number(const std::string& path) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    try {
      out_[path] = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return fail("bad number");
    }
    return true;
  }

  const std::string& text_;
  std::map<std::string, double>& out_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool load_flat(const char* path, std::map<std::string, double>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  JsonFlattener parser(text, out);
  if (!parser.run()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path, parser.error().c_str());
    return false;
  }
  return true;
}

bool key_selected(const std::string& key, const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (key == prefix) return true;
    if (key.size() > prefix.size() && key.compare(0, prefix.size(), prefix) == 0 &&
        key[prefix.size()] == '.')
      return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double tolerance = 0.2;
  std::vector<std::string> prefixes = {"speedups", "speedup"};

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--tolerance=", 12) == 0) {
      tolerance = std::atof(arg + 12);
      if (tolerance < 0.0 || tolerance >= 1.0) {
        std::fprintf(stderr, "bench_diff: --tolerance must be in [0, 1)\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--keys=", 7) == 0) {
      prefixes.clear();
      std::string list(arg + 7);
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string item = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty()) prefixes.push_back(item);
        pos = comma == std::string::npos ? comma : comma + 1;
      }
      if (prefixes.empty()) {
        std::fprintf(stderr, "bench_diff: --keys needs at least one prefix\n");
        return 2;
      }
    } else if (!baseline_path) {
      baseline_path = arg;
    } else if (!current_path) {
      current_path = arg;
    } else {
      std::fprintf(stderr, "bench_diff: unexpected argument %s\n", arg);
      return 2;
    }
  }
  if (!baseline_path || !current_path) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <current.json> "
                 "[--tolerance=0.2] [--keys=speedups,speedup]\n");
    return 2;
  }

  std::map<std::string, double> baseline, current;
  if (!load_flat(baseline_path, baseline) || !load_flat(current_path, current)) return 2;

  unsigned gated = 0, regressed = 0;
  for (const auto& [key, base_value] : baseline) {
    if (!key_selected(key, prefixes)) continue;
    ++gated;
    const auto it = current.find(key);
    if (it == current.end()) {
      std::fprintf(stderr, "REGRESSION %s: present in baseline, missing from current\n",
                   key.c_str());
      ++regressed;
      continue;
    }
    const double floor = base_value * (1.0 - tolerance);
    const char* verdict = it->second < floor ? "REGRESSION" : "ok";
    if (it->second < floor) ++regressed;
    std::printf("%-10s %-45s baseline %10.3f  current %10.3f  floor %10.3f\n", verdict,
                key.c_str(), base_value, it->second, floor);
  }

  if (gated == 0) {
    std::fprintf(stderr, "bench_diff: no baseline keys matched the selection\n");
    return 2;
  }
  if (regressed > 0) {
    std::fprintf(stderr, "bench_diff: %u of %u gated keys regressed beyond %.0f%%\n",
                 regressed, gated, tolerance * 100.0);
    return 1;
  }
  std::printf("bench_diff: %u gated keys within %.0f%% of baseline\n", gated,
              tolerance * 100.0);
  return 0;
}
