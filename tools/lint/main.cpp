// safedm-lint CLI. Modes:
//
//   safedm-lint --root <repo> --compile-commands <build/compile_commands.json>
//               [--manifest FILE] [--update-manifest] [--jobs N]
//       Lint the repo: every translation unit listed in compile_commands.json
//       that lives under <repo>/src or <repo>/bench, plus every header found
//       under those trees (headers never appear in compile_commands). The
//       snapshot manifest defaults to <repo>/tools/lint/snapshot_manifest.txt;
//       --update-manifest rewrites it from the sources instead of diffing.
//       Prints findings as `path:line: [check] message`; exit 1 when any exist.
//
//   safedm-lint --selftest <fixtures-dir> <golden-file> [--update-golden]
//       Lint every .hpp/.cpp under <fixtures-dir> (all checks enabled; a
//       <fixtures-dir>/snapshot_manifest.txt is used when present) and diff
//       the findings against the golden file. Exit 0 only on an exact match —
//       a seeded violation that stops firing fails just as loudly as a
//       spurious new finding. --update-golden rewrites the golden in place.
//
//   safedm-lint --files <file>...
//       Lint an explicit file list (all checks enabled). Debugging aid.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using safedm::lint::Finding;
using safedm::lint::LintOptions;
using safedm::lint::LintResult;
using safedm::lint::SourceFile;

namespace {

int usage() {
  std::cerr << "usage: safedm-lint --root DIR --compile-commands FILE\n"
               "                   [--manifest FILE] [--update-manifest] [--jobs N]\n"
               "       safedm-lint --selftest FIXTURE_DIR GOLDEN_FILE [--update-golden]\n"
               "       safedm-lint --files FILE...\n";
  return 2;
}

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h" || ext == ".hh";
}

std::string relative_to(const fs::path& p, const fs::path& base) {
  std::error_code ec;
  fs::path rel = fs::relative(p, base, ec);
  return (ec || rel.empty()) ? p.generic_string() : rel.generic_string();
}

// Collect lintable files under `dir` in a deterministic order.
std::vector<fs::path> walk(const fs::path& dir) {
  std::vector<fs::path> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && lintable_extension(entry.path())) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

int report(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) std::cout << safedm::lint::format(f) << "\n";
  if (findings.empty()) {
    std::cout << "safedm-lint: clean\n";
    return 0;
  }
  std::cout << "safedm-lint: " << findings.size() << " finding(s)\n";
  return 1;
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out.flush());
}

struct Cli {
  std::string root, cc, selftest_dir, golden, manifest;
  std::vector<std::string> file_args;
  bool update_manifest = false;
  bool update_golden = false;
  unsigned jobs = 0;
};

int run_repo(const Cli& cli) {
  std::error_code ec;
  const fs::path root = fs::canonical(cli.root, ec);
  if (ec) {
    std::cerr << "safedm-lint: cannot resolve root `" << cli.root << "`\n";
    return 2;
  }
  const fs::path src = root / "src";
  const fs::path bench = root / "bench";

  std::vector<fs::path> paths;
  std::vector<std::string> tus = safedm::lint::compile_commands_files(cli.cc);
  if (tus.empty()) {
    std::cerr << "safedm-lint: no translation units in `" << cli.cc
              << "` (configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)\n";
    return 2;
  }
  auto under = [](const fs::path& p, const fs::path& base) {
    const std::string ps = p.generic_string(), bs = base.generic_string() + "/";
    return ps.compare(0, bs.size(), bs) == 0;
  };
  for (const std::string& tu : tus) {
    const fs::path p = fs::weakly_canonical(tu, ec);
    if (!ec && (under(p, src) || under(p, bench)) && lintable_extension(p)) paths.push_back(p);
  }
  // Headers are not translation units; pick them up from the tree.
  for (const fs::path& dir : {src, bench}) {
    for (fs::path& p : walk(dir)) {
      if (p.extension() != ".cpp" && p.extension() != ".cc") paths.push_back(std::move(p));
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> files;
  for (const fs::path& p : paths) {
    SourceFile sf;
    if (!safedm::lint::load_source(p.string(), relative_to(p, root), /*determinism=*/true, sf)) {
      std::cerr << "safedm-lint: cannot read `" << p.string() << "`\n";
      return 2;
    }
    files.push_back(std::move(sf));
  }
  std::cout << "safedm-lint: " << files.size() << " files\n";

  LintOptions opt;
  opt.jobs = cli.jobs;
  opt.update_manifest = cli.update_manifest;
  const fs::path manifest = cli.manifest.empty()
                                ? root / "tools" / "lint" / "snapshot_manifest.txt"
                                : fs::path(cli.manifest);
  opt.manifest_path = manifest.string();
  opt.manifest_display = relative_to(manifest, root);
  const LintResult res = safedm::lint::run_checks(files, opt);
  if (cli.update_manifest) {
    if (!write_text(opt.manifest_path, res.manifest_text)) {
      std::cerr << "safedm-lint: cannot write manifest `" << opt.manifest_path << "`\n";
      return 2;
    }
    std::cout << "safedm-lint: manifest updated (" << opt.manifest_display << ")\n";
  }
  return report(res.findings);
}

int run_files(const Cli& cli) {
  std::vector<SourceFile> files;
  for (const std::string& a : cli.file_args) {
    SourceFile sf;
    if (!safedm::lint::load_source(a, a, /*determinism=*/true, sf)) {
      std::cerr << "safedm-lint: cannot read `" << a << "`\n";
      return 2;
    }
    files.push_back(std::move(sf));
  }
  LintOptions opt;
  opt.jobs = cli.jobs;
  opt.manifest_path = cli.manifest;
  opt.manifest_display = cli.manifest;
  return report(safedm::lint::run_checks(files, opt).findings);
}

int run_selftest(const Cli& cli) {
  std::vector<SourceFile> files;
  for (const fs::path& p : walk(cli.selftest_dir)) {
    SourceFile sf;
    if (!safedm::lint::load_source(p.string(), relative_to(p, cli.selftest_dir), true, sf)) {
      std::cerr << "safedm-lint: cannot read `" << p.string() << "`\n";
      return 2;
    }
    files.push_back(std::move(sf));
  }
  if (files.empty()) {
    std::cerr << "safedm-lint: no fixtures under `" << cli.selftest_dir << "`\n";
    return 2;
  }
  LintOptions opt;
  opt.jobs = cli.jobs;
  const fs::path fixture_manifest = fs::path(cli.selftest_dir) / "snapshot_manifest.txt";
  if (fs::exists(fixture_manifest)) {
    opt.manifest_path = fixture_manifest.string();
    opt.manifest_display = "snapshot_manifest.txt";
  }
  std::vector<std::string> got;
  for (const Finding& f : safedm::lint::run_checks(files, opt).findings) {
    got.push_back(safedm::lint::format(f));
  }

  if (cli.update_golden) {
    std::string text =
        "# safedm-lint selftest golden findings — one line per seeded violation.\n"
        "# Regenerate with: build/tools/lint/safedm-lint --selftest tools/lint/fixtures \\\n"
        "#   tools/lint/fixtures/expected.txt --update-golden\n";
    for (const std::string& g : got) text += g + "\n";
    if (!write_text(cli.golden, text)) {
      std::cerr << "safedm-lint: cannot write golden `" << cli.golden << "`\n";
      return 2;
    }
    std::cout << "safedm-lint selftest: golden updated (" << got.size() << " findings)\n";
    return 0;
  }

  std::vector<std::string> want;
  std::ifstream in(cli.golden);
  if (!in) {
    std::cerr << "safedm-lint: cannot read golden file `" << cli.golden << "`\n";
    return 2;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty() && line[0] != '#') want.push_back(line);
  }

  bool ok = true;
  for (const std::string& g : got) {
    if (std::find(want.begin(), want.end(), g) == want.end()) {
      std::cout << "UNEXPECTED: " << g << "\n";
      ok = false;
    }
  }
  for (const std::string& w : want) {
    if (std::find(got.begin(), got.end(), w) == got.end()) {
      std::cout << "MISSING:    " << w << "\n";
      ok = false;
    }
  }
  std::cout << "safedm-lint selftest: " << got.size() << " findings, " << want.size()
            << " expected — " << (ok ? "OK" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  Cli cli;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--root" && i + 1 < args.size()) {
      cli.root = args[++i];
    } else if (args[i] == "--compile-commands" && i + 1 < args.size()) {
      cli.cc = args[++i];
    } else if (args[i] == "--manifest" && i + 1 < args.size()) {
      cli.manifest = args[++i];
    } else if (args[i] == "--update-manifest") {
      cli.update_manifest = true;
    } else if (args[i] == "--update-golden") {
      cli.update_golden = true;
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      cli.jobs = static_cast<unsigned>(std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--selftest" && i + 2 < args.size()) {
      cli.selftest_dir = args[++i];
      cli.golden = args[++i];
    } else if (args[i] == "--files") {
      cli.file_args.assign(args.begin() + static_cast<long>(i) + 1, args.end());
      break;
    } else {
      return usage();
    }
  }
  if (!cli.selftest_dir.empty()) return run_selftest(cli);
  if (!cli.root.empty() && !cli.cc.empty()) return run_repo(cli);
  if (!cli.file_args.empty()) return run_files(cli);
  return usage();
}
