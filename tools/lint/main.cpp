// safedm-lint CLI. Modes:
//
//   safedm-lint --root <repo> --compile-commands <build/compile_commands.json>
//       Lint the repo: every translation unit listed in compile_commands.json
//       that lives under <repo>/src or <repo>/bench, plus every header found
//       under those trees (headers never appear in compile_commands). Prints
//       findings as `path:line: [check] message`; exit 1 when any exist.
//
//   safedm-lint --selftest <fixtures-dir> <golden-file>
//       Lint every .hpp/.cpp under <fixtures-dir> (all checks enabled) and
//       diff the findings against the golden file. Exit 0 only on an exact
//       match — a seeded violation that stops firing fails just as loudly as
//       a spurious new finding.
//
//   safedm-lint --files <file>...
//       Lint an explicit file list (all checks enabled). Debugging aid.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using safedm::lint::Finding;
using safedm::lint::SourceFile;

namespace {

int usage() {
  std::cerr << "usage: safedm-lint --root DIR --compile-commands FILE\n"
               "       safedm-lint --selftest FIXTURE_DIR GOLDEN_FILE\n"
               "       safedm-lint --files FILE...\n";
  return 2;
}

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h" || ext == ".hh";
}

std::string relative_to(const fs::path& p, const fs::path& base) {
  std::error_code ec;
  fs::path rel = fs::relative(p, base, ec);
  return (ec || rel.empty()) ? p.generic_string() : rel.generic_string();
}

// Collect lintable files under `dir` in a deterministic order.
std::vector<fs::path> walk(const fs::path& dir) {
  std::vector<fs::path> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && lintable_extension(entry.path())) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

int report(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) std::cout << safedm::lint::format(f) << "\n";
  if (findings.empty()) {
    std::cout << "safedm-lint: clean\n";
    return 0;
  }
  std::cout << "safedm-lint: " << findings.size() << " finding(s)\n";
  return 1;
}

int run_repo(const std::string& root_arg, const std::string& cc_path) {
  std::error_code ec;
  const fs::path root = fs::canonical(root_arg, ec);
  if (ec) {
    std::cerr << "safedm-lint: cannot resolve root `" << root_arg << "`\n";
    return 2;
  }
  const fs::path src = root / "src";
  const fs::path bench = root / "bench";

  std::vector<fs::path> paths;
  std::vector<std::string> tus = safedm::lint::compile_commands_files(cc_path);
  if (tus.empty()) {
    std::cerr << "safedm-lint: no translation units in `" << cc_path
              << "` (configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)\n";
    return 2;
  }
  auto under = [](const fs::path& p, const fs::path& base) {
    const std::string ps = p.generic_string(), bs = base.generic_string() + "/";
    return ps.compare(0, bs.size(), bs) == 0;
  };
  for (const std::string& tu : tus) {
    const fs::path p = fs::weakly_canonical(tu, ec);
    if (!ec && (under(p, src) || under(p, bench)) && lintable_extension(p)) paths.push_back(p);
  }
  // Headers are not translation units; pick them up from the tree.
  for (const fs::path& dir : {src, bench}) {
    for (fs::path& p : walk(dir)) {
      if (p.extension() != ".cpp" && p.extension() != ".cc") paths.push_back(std::move(p));
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> files;
  for (const fs::path& p : paths) {
    SourceFile sf;
    if (!safedm::lint::load_source(p.string(), relative_to(p, root), /*determinism=*/true, sf)) {
      std::cerr << "safedm-lint: cannot read `" << p.string() << "`\n";
      return 2;
    }
    files.push_back(std::move(sf));
  }
  std::cout << "safedm-lint: " << files.size() << " files\n";
  return report(safedm::lint::run_checks(files));
}

int run_files(const std::vector<std::string>& args) {
  std::vector<SourceFile> files;
  for (const std::string& a : args) {
    SourceFile sf;
    if (!safedm::lint::load_source(a, a, /*determinism=*/true, sf)) {
      std::cerr << "safedm-lint: cannot read `" << a << "`\n";
      return 2;
    }
    files.push_back(std::move(sf));
  }
  return report(safedm::lint::run_checks(files));
}

int run_selftest(const std::string& fixture_dir, const std::string& golden_path) {
  std::vector<SourceFile> files;
  for (const fs::path& p : walk(fixture_dir)) {
    SourceFile sf;
    if (!safedm::lint::load_source(p.string(), relative_to(p, fixture_dir), true, sf)) {
      std::cerr << "safedm-lint: cannot read `" << p.string() << "`\n";
      return 2;
    }
    files.push_back(std::move(sf));
  }
  if (files.empty()) {
    std::cerr << "safedm-lint: no fixtures under `" << fixture_dir << "`\n";
    return 2;
  }
  std::vector<std::string> got;
  for (const Finding& f : safedm::lint::run_checks(files)) got.push_back(safedm::lint::format(f));

  std::vector<std::string> want;
  std::ifstream in(golden_path);
  if (!in) {
    std::cerr << "safedm-lint: cannot read golden file `" << golden_path << "`\n";
    return 2;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty() && line[0] != '#') want.push_back(line);
  }

  bool ok = true;
  for (const std::string& g : got) {
    if (std::find(want.begin(), want.end(), g) == want.end()) {
      std::cout << "UNEXPECTED: " << g << "\n";
      ok = false;
    }
  }
  for (const std::string& w : want) {
    if (std::find(got.begin(), got.end(), w) == got.end()) {
      std::cout << "MISSING:    " << w << "\n";
      ok = false;
    }
  }
  std::cout << "safedm-lint selftest: " << got.size() << " findings, " << want.size()
            << " expected — " << (ok ? "OK" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string root, cc, selftest_dir, golden;
  std::vector<std::string> file_args;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--root" && i + 1 < args.size()) {
      root = args[++i];
    } else if (args[i] == "--compile-commands" && i + 1 < args.size()) {
      cc = args[++i];
    } else if (args[i] == "--selftest" && i + 2 < args.size()) {
      selftest_dir = args[++i];
      golden = args[++i];
    } else if (args[i] == "--files") {
      file_args.assign(args.begin() + static_cast<long>(i) + 1, args.end());
      break;
    } else {
      return usage();
    }
  }
  if (!selftest_dir.empty()) return run_selftest(selftest_dir, golden);
  if (!root.empty() && !cc.empty()) return run_repo(root, cc);
  if (!file_args.empty()) return run_files(file_args);
  return usage();
}
