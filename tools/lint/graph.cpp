#include "graph.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <tuple>

namespace safedm::lint {

namespace {

std::vector<std::string> split_path(const std::string& p) {
  std::vector<std::string> comp;
  std::string cur;
  for (char c : p) {
    if (c == '/') {
      if (!cur.empty()) comp.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) comp.push_back(cur);
  return comp;
}

std::string normalize_path(const std::string& p) {
  std::vector<std::string> out;
  for (const std::string& c : split_path(p)) {
    if (c == ".") continue;
    if (c == ".." && !out.empty() && out.back() != "..") {
      out.pop_back();
      continue;
    }
    out.push_back(c);
  }
  std::string joined;
  for (const std::string& c : out) {
    if (!joined.empty()) joined += '/';
    joined += c;
  }
  return joined;
}

std::string dirname_of(const std::string& p) {
  const std::size_t slash = p.find_last_of('/');
  return slash == std::string::npos ? std::string() : p.substr(0, slash);
}

// The subsystem an include target points into: `safedm/<subsystem>/...`.
// Relative includes stay within the includer's subsystem and never create a
// layering edge.
std::string target_subsystem(const std::string& target) {
  const std::vector<std::string> comp = split_path(target);
  if (comp.size() >= 2 && comp[0] == "safedm") return comp[1];
  return "";
}

}  // namespace

const char* const kLayerDiagram =
    "common -> isa/assembler/mem -> bus/core/trace -> soc/safedm/safede/dcls/rtos -> "
    "faultsim/fuzz/scenario/workloads/hwcost -> bench/tools/tests";

std::vector<IncludeRef> extract_includes(const SourceFile& f) {
  std::vector<IncludeRef> out;
  // Line-start offsets into the blanked code, to reject directives that
  // live inside comments or string literals (blanked there).
  std::vector<std::size_t> starts;
  starts.push_back(0);
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (f.code[i] == '\n') starts.push_back(i + 1);
  }
  for (std::size_t li = 0; li < f.raw_lines.size(); ++li) {
    const std::string& raw = f.raw_lines[li];
    std::size_t b = raw.find_first_not_of(" \t");
    if (b == std::string::npos || raw[b] != '#') continue;
    if (li < starts.size()) {
      const std::size_t off = starts[li] + b;
      if (off >= f.code.size() || f.code[off] != '#') continue;  // commented out
    }
    std::size_t j = b + 1;
    while (j < raw.size() && (raw[j] == ' ' || raw[j] == '\t')) ++j;
    if (raw.compare(j, 7, "include") != 0) continue;
    j += 7;
    while (j < raw.size() && (raw[j] == ' ' || raw[j] == '\t')) ++j;
    if (j >= raw.size()) continue;
    IncludeRef ref;
    ref.line = static_cast<int>(li) + 1;
    if (raw[j] == '"') {
      const std::size_t close = raw.find('"', j + 1);
      if (close == std::string::npos) continue;
      ref.target = raw.substr(j + 1, close - j - 1);
    } else if (raw[j] == '<') {
      const std::size_t close = raw.find('>', j + 1);
      if (close == std::string::npos) continue;
      ref.target = raw.substr(j + 1, close - j - 1);
      ref.angled = true;
    } else {
      continue;  // computed include (macro) — out of scope
    }
    out.push_back(std::move(ref));
  }
  return out;
}

std::string subsystem_of(const std::string& path) {
  const std::vector<std::string> comp = split_path(path);
  if (comp.empty()) return "";
  for (std::size_t i = 0; i + 1 < comp.size(); ++i) {
    if (comp[i] == "src") return comp[i + 1];
  }
  if (comp[0] == "bench" || comp[0] == "tools" || comp[0] == "tests" || comp[0] == "examples") {
    return comp[0];
  }
  return "";
}

int layer_of(const std::string& subsystem) {
  static const std::map<std::string, int> layers = {
      {"common", 0},
      {"isa", 1},      {"assembler", 1}, {"mem", 1},
      {"bus", 2},      {"core", 2},      {"trace", 2},
      {"soc", 3},      {"safedm", 3},    {"safede", 3},   {"dcls", 3},      {"rtos", 3},
      {"faultsim", 4}, {"fuzz", 4},      {"scenario", 4}, {"workloads", 4}, {"hwcost", 4},
      {"bench", 5},    {"tools", 5},     {"tests", 5},    {"examples", 5},
  };
  auto it = layers.find(subsystem);
  return it == layers.end() ? -1 : it->second;
}

IncludeGraph build_include_graph(const std::vector<SourceFile>& files,
                                 const std::vector<std::string>& roots) {
  IncludeGraph g;
  for (const SourceFile& f : files) g.nodes.insert(f.path);
  // Auto-derive include roots: every path prefix ending in an `include`
  // component, the repo's `-I` convention (`src/<sub>/include`).
  std::set<std::string> all_roots(roots.begin(), roots.end());
  for (const std::string& p : g.nodes) {
    std::size_t pos = 0;
    while ((pos = p.find("include/", pos)) != std::string::npos) {
      if (pos == 0 || p[pos - 1] == '/') all_roots.insert(p.substr(0, pos + 7));
      pos += 8;
    }
  }
  for (const SourceFile& f : files) {
    for (const IncludeRef& inc : extract_includes(f)) {
      std::vector<std::string> cands;
      if (!inc.angled) {
        const std::string dir = dirname_of(f.path);
        cands.push_back(normalize_path(dir.empty() ? inc.target : dir + "/" + inc.target));
      }
      for (const std::string& r : all_roots) cands.push_back(normalize_path(r + "/" + inc.target));
      for (const std::string& cand : cands) {
        if (g.nodes.count(cand)) {
          g.edges[f.path].push_back({cand, inc.line});
          break;
        }
      }
    }
  }
  for (auto& [from, tos] : g.edges) {
    std::sort(tos.begin(), tos.end());
    tos.erase(std::unique(tos.begin(), tos.end()), tos.end());
  }
  return g;
}

std::vector<std::string> find_file_cycle(const IncludeGraph& g) {
  std::map<std::string, int> color;  // 0 = unvisited, 1 = on stack, 2 = done
  std::vector<std::string> stack, cycle;
  std::function<bool(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    auto it = g.edges.find(u);
    if (it != g.edges.end()) {
      for (const auto& [v, line] : it->second) {
        (void)line;
        if (color[v] == 1) {
          auto pos = std::find(stack.begin(), stack.end(), v);
          cycle.assign(pos, stack.end());
          cycle.push_back(v);
          return true;
        }
        if (color[v] == 0 && dfs(v)) return true;
      }
    }
    stack.pop_back();
    color[u] = 2;
    return false;
  };
  for (const std::string& n : g.nodes) {
    if (color[n] == 0 && dfs(n)) return cycle;
  }
  return {};
}

bool header_is_guarded(const std::vector<std::string>& raw_lines) {
  std::string ifndef_macro;
  for (const std::string& raw : raw_lines) {
    std::size_t b = raw.find_first_not_of(" \t");
    if (b == std::string::npos || raw[b] != '#') continue;
    std::istringstream is(raw.substr(b + 1));
    std::string directive, arg;
    is >> directive >> arg;
    if (directive == "pragma" && arg == "once") return true;
    if (directive == "ifndef" && ifndef_macro.empty()) ifndef_macro = arg;
    if (directive == "define" && !ifndef_macro.empty() && arg == ifndef_macro) return true;
  }
  return false;
}

void check_layering(const std::vector<SourceFile>& files, AnnotationUse& used,
                    std::vector<Finding>& out) {
  // Subsystem-level edges (for cycle detection) with a deterministic
  // representative include: the smallest (file, line, target).
  std::map<std::pair<std::string, std::string>, std::tuple<std::string, int, std::string>> edges;
  for (const SourceFile& f : files) {
    const std::string& ssub = f.subsystem;
    if (ssub.empty()) continue;
    const int sl = layer_of(ssub);
    if (sl < 0) continue;
    for (const IncludeRef& inc : extract_includes(f)) {
      const std::string tsub = target_subsystem(inc.target);
      if (tsub.empty()) continue;
      const int tl = layer_of(tsub);
      if (tl < 0) continue;
      const int al = annotation_line(f, inc.line, "allow-layer");
      if (tl > sl) {
        if (al != 0) {
          used.mark(f, al, "allow-layer");
        } else {
          std::ostringstream msg;
          msg << "layering back-edge: `" << ssub << "` (layer " << sl << ") must not include `"
              << inc.target << "` (layer " << tl << " `" << tsub
              << "`); allowed order is " << kLayerDiagram
              << " (escape: `// lint: allow-layer(reason)`)";
          out.push_back({f.path, inc.line, "layering", msg.str()});
        }
        continue;  // annotated or reported — keep it out of the cycle graph
      }
      if (tsub == ssub) continue;
      if (al != 0) used.mark(f, al, "allow-layer");  // reviewed same/forward edge
      const auto key = std::make_pair(ssub, tsub);
      const auto val = std::make_tuple(f.path, inc.line, inc.target);
      auto it = edges.find(key);
      if (it == edges.end() || val < it->second) edges[key] = val;
    }
  }

  // Same-layer cycles (forward edges cannot cycle; back-edges are already
  // findings above).
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, rep] : edges) {
    (void)rep;
    adj[key.first].push_back(key.second);
  }
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    auto it = adj.find(u);
    if (it != adj.end()) {
      for (const std::string& v : it->second) {
        if (color[v] == 1) {
          auto pos = std::find(stack.begin(), stack.end(), v);
          std::vector<std::string> cyc(pos, stack.end());
          // Canonical rotation: smallest subsystem first.
          auto mn = std::min_element(cyc.begin(), cyc.end());
          std::rotate(cyc.begin(), mn, cyc.end());
          std::string rendered;
          for (const std::string& s : cyc) rendered += s + " -> ";
          rendered += cyc.front();
          if (reported.insert(rendered).second) {
            const auto& rep = edges.at({cyc.front(), cyc[1 % cyc.size()]});
            out.push_back({std::get<0>(rep), std::get<1>(rep), "layering",
                           "subsystem include cycle: " + rendered +
                               " (break one of these includes)"});
          }
        } else if (color[v] == 0) {
          dfs(v);
        }
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [u, tos] : adj) {
    (void)tos;
    if (color[u] == 0) dfs(u);
  }
}

}  // namespace safedm::lint
