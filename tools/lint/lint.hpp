// safedm-lint: repo-native static analysis for the SafeDM codebase.
//
// Three check families, tuned to the invariants this repo actually relies
// on (TESTING.md "Static analysis & TSan" documents the catalog):
//
//   snapshot-completeness  every data member of a class that defines both
//                          save_state(StateWriter&) and
//                          restore_state(StateReader&) must be referenced
//                          in both bodies. Escape hatch:
//                          `// lint: no-snapshot(reason)` on (or directly
//                          above) the member declaration. Reference and
//                          const members are exempt automatically (they
//                          cannot be reseated/reassigned on restore).
//
//   nondeterminism         in src/ and bench/: bans rand()/srand(),
//                          std::random_device, time()/clock(), and
//                          chrono::system_clock — anything whose value
//                          differs run-over-run and could leak into hashed
//                          or JSON-emitted results. Escape:
//                          `// lint: allow-nondeterminism(reason)`.
//
//   unordered-iteration    range-for over a std::unordered_{map,set}
//                          (iteration order is unspecified, so anything it
//                          feeds — output, hashes, accumulation order — is
//                          nondeterministic across libstdc++ versions).
//                          Escape: `// lint: allow-unordered-iteration(reason)`.
//
//   header-guard           every header must use #pragma once (or a
//                          classic #ifndef/#define guard).
//
//   using-namespace-header no `using namespace` in headers. Escape:
//                          `// lint: allow-using-namespace(reason)`.
//
//   bad-annotation         a `// lint:` marker with an unknown kind or an
//                          empty reason — the escape does not apply, and
//                          the malformed marker itself is reported.
//
// The parser is a deliberate 90% solution: a comment/string-stripping
// tokenizer plus a brace-matching scope walker, not a real C++ front end.
// Known limitations (all benign for this codebase, see TESTING.md):
// function-pointer members parse as functions, and fields touched only
// through helper functions called by save_state/restore_state need a
// `no-snapshot` annotation.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace safedm::lint {

struct Finding {
  std::string file;  // path as reported (relative to the lint root)
  int line = 0;
  std::string check;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (check != o.check) return check < o.check;
    return message < o.message;
  }
  bool operator==(const Finding& o) const {
    return file == o.file && line == o.line && check == o.check && message == o.message;
  }
};

/// One file's worth of lexed state, shared by all checks.
struct SourceFile {
  std::string path;          // as reported in findings
  bool is_header = false;    // .hpp / .h
  bool determinism = false;  // subject to the determinism checks (src/, bench/)
  std::vector<std::string> raw_lines;
  std::string code;  // comments and literals blanked, line structure kept
  // line -> escape-hatch kinds ("no-snapshot", "allow-nondeterminism", ...)
  std::map<int, std::set<std::string>> annotations;
  std::vector<Finding> bad_annotations;  // malformed `// lint:` markers
};

/// Load + lex one file. Returns false (and leaves `out` untouched) when the
/// file cannot be read.
bool load_source(const std::string& disk_path, const std::string& report_path, bool determinism,
                 SourceFile& out);

/// Run every check over the file set and return the sorted findings.
std::vector<Finding> run_checks(const std::vector<SourceFile>& files);

/// `path:line: [check] message` — the one canonical rendering, used by the
/// CLI output and the selftest golden file alike.
std::string format(const Finding& f);

/// Extract the translation-unit file list from a compile_commands.json.
/// Minimal parser for the flat shape CMake emits; relative entries are
/// resolved against their "directory" field.
std::vector<std::string> compile_commands_files(const std::string& json_path);

}  // namespace safedm::lint
