// safedm-lint: repo-native static analysis for the SafeDM codebase.
//
// v2 is a multi-pass, cross-TU analyzer. Pass 1 lexes + parses every file
// into a repo-wide symbol table (classes/members, save/restore bodies,
// constexpr integer constants, guarded-by registrations) and an include
// graph, in parallel over the shared ThreadPool. Pass 2 runs the per-file
// checks (again parallel, deterministic merge). Pass 3 runs the cross-TU
// checks serially over the merged tables. Output is sorted and deduped, so
// it is byte-identical at any thread count.
//
// Check catalog (TESTING.md "Static analysis & TSan" documents it in full):
//
//   snapshot-completeness  every data member of a class that defines both
//                          save_state(StateWriter&) and
//                          restore_state(StateReader&) must be referenced
//                          in both bodies. Escape hatch:
//                          `// lint: no-snapshot(reason)` on (or directly
//                          above) the member declaration. Reference and
//                          const members are exempt automatically (they
//                          cannot be reseated/reassigned on restore).
//
//   nondeterminism         in src/ and bench/: bans rand()/srand(),
//                          std::random_device, time()/clock(), and
//                          chrono::system_clock — anything whose value
//                          differs run-over-run and could leak into hashed
//                          or JSON-emitted results. Escape:
//                          `// lint: allow-nondeterminism(reason)`.
//
//   unordered-iteration    range-for over a std::unordered_{map,set}
//                          (iteration order is unspecified, so anything it
//                          feeds — output, hashes, accumulation order — is
//                          nondeterministic across libstdc++ versions).
//                          Escape: `// lint: allow-unordered-iteration(reason)`.
//
//   header-guard           every header must use #pragma once (or a
//                          classic #ifndef/#define guard).
//
//   using-namespace-header no `using namespace` in headers. Escape:
//                          `// lint: allow-using-namespace(reason)`.
//
//   bad-annotation         a `// lint:` marker with an unknown kind or an
//                          empty reason — the escape does not apply, and
//                          the malformed marker itself is reported.
//
//   lock-discipline        a member annotated `// lint: guarded-by(mutex_)`
//                          may only be touched inside a brace scope that
//                          constructs a lock_guard/unique_lock/scoped_lock/
//                          shared_lock on that mutex. Applies across the
//                          declaring header and its same-stem .cpp. Escape:
//                          `// lint: allow-unguarded(reason)` on the access.
//
//   layering               #include edges must respect the dependency DAG
//                          common → isa/assembler/mem → bus/core/trace →
//                          soc/safedm/safede/dcls/rtos → faultsim/fuzz/
//                          scenario/workloads/hwcost → bench/tools/tests.
//                          Back-edges and subsystem include cycles are
//                          findings. Escape: `// lint: allow-layer(reason)`
//                          on the offending #include line.
//
//   snapshot-format-drift  every save_state body that opens a tagged
//                          section is inventoried (class, fourcc, version,
//                          serialized member set) into a checked-in
//                          manifest (tools/lint/snapshot_manifest.txt).
//                          Changing the member set without bumping the
//                          section version is a finding; regenerate with
//                          `safedm-lint ... --update-manifest`.
//
//   stale-annotation       any no-snapshot/allow-* annotation whose check
//                          would not have fired is itself a finding, so
//                          escape hatches cannot accumulate.
//
// The parser is a deliberate 90% solution: a comment/string-stripping
// tokenizer plus a brace-matching scope walker, not a real C++ front end.
// Known limitations (all benign for this codebase, see TESTING.md):
// function-pointer members parse as functions, fields touched only through
// helper functions called by save_state/restore_state need `no-snapshot`,
// lock-discipline matches mutexes by name (not object identity), and macro
// *definitions* are preprocessor text the checks do not see.
#pragma once

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace safedm::lint {

struct Finding {
  std::string file;  // path as reported (relative to the lint root)
  int line = 0;
  std::string check;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (check != o.check) return check < o.check;
    return message < o.message;
  }
  bool operator==(const Finding& o) const {
    return file == o.file && line == o.line && check == o.check && message == o.message;
  }
};

/// One file's worth of lexed state, shared by all checks.
struct SourceFile {
  std::string path;          // as reported in findings
  bool is_header = false;    // .hpp / .h
  bool determinism = false;  // subject to the determinism checks (src/, bench/)
  std::string subsystem;     // "common", "soc", ..., "bench" — "" when unplaced
  std::vector<std::string> raw_lines;
  std::string code;  // comments and literals blanked, line structure kept
  // line -> annotation kind -> reason ("no-snapshot", "guarded-by", ...)
  std::map<int, std::map<std::string, std::string>> annotations;
  // byte offset of each string literal's opening quote -> its raw contents
  // (blanked out of `code`; the manifest check needs section fourcc tags)
  std::map<std::size_t, std::string> string_literals;
  std::vector<Finding> bad_annotations;  // malformed `// lint:` markers
};

/// An annotation applies to its own line and the line directly below it.
/// Returns the line carrying `kind` (== `line` or `line - 1`), or 0.
int annotation_line(const SourceFile& f, int line, const std::string& kind);

/// The reason text of the annotation found by annotation_line, or nullptr.
const std::string* annotation_reason(const SourceFile& f, int line, const std::string& kind);

/// Tracks which escape-hatch annotations actually suppressed a would-be
/// finding, so the stale-annotation pass can flag the rest.
struct AnnotationUse {
  std::set<std::tuple<std::string, int, std::string>> used;  // (path, line, kind)
  void mark(const SourceFile& f, int line, const std::string& kind) {
    used.insert({f.path, line, kind});
  }
  bool is_used(const std::string& path, int line, const std::string& kind) const {
    return used.count({path, line, kind}) != 0;
  }
  void merge(const AnnotationUse& o) { used.insert(o.used.begin(), o.used.end()); }
};

struct LintOptions {
  // Path of the checked-in snapshot manifest; "" disables the drift check.
  std::string manifest_path;
  // Path to report manifest-level findings against (relative display form).
  std::string manifest_display;
  // When set, run_checks skips drift findings and returns the canonical
  // manifest text in LintResult::manifest_text for the caller to write.
  bool update_manifest = false;
  unsigned jobs = 0;  // worker threads; 0 = hardware default
};

struct LintResult {
  std::vector<Finding> findings;
  std::string manifest_text;  // canonical manifest regenerated from sources
};

/// Load + lex one file. Returns false (and leaves `out` untouched) when the
/// file cannot be read.
bool load_source(const std::string& disk_path, const std::string& report_path, bool determinism,
                 SourceFile& out);

/// Run every check over the file set. Deterministic at any `jobs` count.
LintResult run_checks(const std::vector<SourceFile>& files, const LintOptions& opt);

/// `path:line: [check] message` — the one canonical rendering, used by the
/// CLI output and the selftest golden file alike.
std::string format(const Finding& f);

/// Extract the translation-unit file list from a compile_commands.json.
/// Minimal parser for the flat shape CMake emits; relative entries are
/// resolved against their "directory" field.
std::vector<std::string> compile_commands_files(const std::string& json_path);

}  // namespace safedm::lint
