// Pass-1 symbol extraction for safedm-lint: tokenizer, class/member parser,
// save/restore body capture (with section fourcc/version), constexpr
// integer constants, and guarded-by member registrations. One FileSymbols
// per source file; run_checks merges them into the cross-TU tables.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace safedm::lint {

struct Tok {
  enum Kind { kIdent, kNum, kPunct } kind;
  std::string text;
  int line;
  std::size_t pos;  // byte offset into SourceFile::code (keys string_literals)
};

std::vector<Tok> tokenize(const std::string& code);

bool is_punct(const Tok& t, const char* p);
bool is_ident(const Tok& t, const char* s);

/// Skip a balanced token group starting at toks[i] (which must be `open`).
/// Returns the index one past the matching closer. Optionally collects the
/// identifiers seen inside.
std::size_t skip_balanced(const std::vector<Tok>& toks, std::size_t i, const char* open,
                          const char* close, std::set<std::string>* idents = nullptr);

/// Skip a template argument list starting at a `<`. Returns the index past
/// the matching `>`, or `begin + 1` when this is not a template list.
std::size_t skip_template_args(const std::vector<Tok>& toks, std::size_t begin);

struct Member {
  std::string name;
  int line = 0;
  bool auto_exempt = false;  // reference or const member: skipped silently
  bool no_snapshot = false;  // carries a `no-snapshot` annotation
  int annot_line = 0;        // line of that annotation (0 when none)
};

struct ClassRec {
  std::string name;
  const SourceFile* file = nullptr;
  std::vector<Member> members;
  bool declares_save = false;
  bool declares_restore = false;
};

/// One save_state or restore_state body (inline or out-of-line).
struct BodyInfo {
  bool present = false;
  std::set<std::string> idents;
  std::string section_tag;     // first begin_section("TAG", v) fourcc, "" if none
  std::string version_token;   // its version argument: literal or identifier
  std::string file;            // path of the file holding the body
  int line = 0;                // line of the body's opening brace
};

struct Bodies {
  BodyInfo save, restore;
};

/// A member registered via `// lint: guarded-by(mutex_name)`.
struct GuardedMember {
  std::string name;
  std::string mutex;
  std::string file;       // declaring file path
  std::string subsystem;  // declaring file's subsystem
  std::string stem;       // declaring file's basename without extension
  int line = 0;           // member declaration line
  int annot_line = 0;     // the guarded-by annotation's line
};

struct FileSymbols {
  std::vector<Tok> toks;
  std::vector<ClassRec> classes;
  std::map<std::string, Bodies> bodies;  // keyed by unqualified class name
  // `constexpr <type> name = <integer literal>;` anywhere in the file.
  std::map<std::string, std::string> constants;
  std::vector<GuardedMember> guarded;
};

/// Basename of `path` without its extension ("src/a/b/foo.cpp" -> "foo").
std::string path_stem(const std::string& path);

/// Tokenize + parse one file into its symbol contribution.
FileSymbols analyze_file(const SourceFile& f);

}  // namespace safedm::lint
