// Include-graph construction + layering DAG for safedm-lint. The graph is
// built from the actual `#include` directives of the scanned file set;
// system headers (angle includes that do not resolve inside the tree) are
// excluded. The layering check works on subsystem names parsed from
// `safedm/<subsystem>/...` include targets, so it fires even on includes of
// headers outside the scanned set.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace safedm::lint {

struct IncludeRef {
  int line = 0;
  std::string target;   // the path between the quotes / angle brackets
  bool angled = false;  // `<...>` (never resolved against the includer dir)
};

/// Every #include directive of `f`, in line order. Directives whose line is
/// fully blanked in `f.code` (commented out) are skipped.
std::vector<IncludeRef> extract_includes(const SourceFile& f);

/// The subsystem a path belongs to: the component after the last "src/" in
/// the path ("src/soc/..." -> "soc"), or the first component for the
/// top-layer trees ("bench/...", "tools/...", "tests/...", "examples/...").
/// "" when the path fits neither shape.
std::string subsystem_of(const std::string& path);

/// Layer index of a subsystem in the dependency DAG (0 = common, ...,
/// 5 = bench/tools/tests). -1 for unknown subsystems.
int layer_of(const std::string& subsystem);

/// The DAG rendered for diagnostics and docs.
extern const char* const kLayerDiagram;

/// File-level include graph over the scanned set. Nodes are report paths;
/// an edge records the #include line that created it.
struct IncludeGraph {
  std::set<std::string> nodes;
  // from-path -> [(to-path, include line)], each sorted.
  std::map<std::string, std::vector<std::pair<std::string, int>>> edges;
};

/// Resolve each file's includes against (a) the includer's directory and
/// (b) `roots` (path prefixes tried as `root + "/" + target`). Includes
/// that resolve to no scanned file — system headers — contribute nothing.
IncludeGraph build_include_graph(const std::vector<SourceFile>& files,
                                 const std::vector<std::string>& roots);

/// First include cycle found (deterministic: DFS over sorted nodes), as the
/// node path a -> b -> ... -> a. Empty when the graph is acyclic.
std::vector<std::string> find_file_cycle(const IncludeGraph& g);

/// True when the header opens with `#pragma once` or a classic
/// #ifndef/#define guard pair.
bool header_is_guarded(const std::vector<std::string>& raw_lines);

/// Layering check: back-edge findings (layer(target) > layer(source)) with
/// the `allow-layer` escape, plus subsystem-level include cycle findings.
void check_layering(const std::vector<SourceFile>& files, AnnotationUse& used,
                    std::vector<Finding>& out);

}  // namespace safedm::lint
