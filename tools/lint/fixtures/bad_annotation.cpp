// Seeded malformed `// lint:` markers: an empty reason and an unknown kind
// must each produce a bad-annotation finding (and must NOT suppress
// anything).
#include <cstdint>

namespace lintfix {

// lint: no-snapshot()
std::uint64_t not_actually_exempt() { return 1; }

// lint: frobnicate(made-up check name)
std::uint64_t also_not_exempt() { return 2; }

}  // namespace lintfix
