// Seeded nondeterminism violations: rand(), std::random_device,
// chrono::system_clock, and time() must each be flagged; the annotated
// rand() call and the steady_clock use must not be.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace lintfix {

unsigned bad_rand() { return static_cast<unsigned>(std::rand()); }

unsigned bad_random_device() {
  std::random_device rd;
  return rd();
}

long bad_system_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long bad_time() { return static_cast<long>(time(nullptr)); }

unsigned allowed_rand() {
  return static_cast<unsigned>(std::rand());  // lint: allow-nondeterminism(fixture: escape hatch demo)
}

long fine_steady_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace lintfix
