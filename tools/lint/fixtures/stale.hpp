// Stale-annotation fixtures: escape hatches whose check would not fire are
// themselves findings, so suppressions cannot accumulate.
//   counted_ round-trips through both bodies, so its `no-snapshot` is stale.
//   (snapshot_clean.hpp holds the counter-examples: annotations that DO
//   suppress a would-be finding and must stay silent.)
#pragma once

#include <cstdint>

#include "state_stub.hpp"

namespace lintfix {

class Tidy {
 public:
  void save_state(StateWriter& w) const { w.put_u64(counted_); }
  void restore_state(StateReader& r) { counted_ = r.get_u64(); }

 private:
  std::uint64_t counted_ = 0;  // lint: no-snapshot(stale: this field round-trips fine)
};

}  // namespace lintfix
