// Seeded layering violation: a layer-0 (common) translation unit reaching up
// into layer-3 (soc). The include below must be flagged as a back-edge.
#include "safedm/soc/soc_stub.hpp"

namespace lintfix {

std::uint32_t common_peeks_at_soc() { return kSocStub; }

}  // namespace lintfix
