// Layer-0 stub header for the layering fixtures.
#pragma once

#include <cstdint>

namespace lintfix {

inline constexpr std::uint32_t kBitsStub = 0xB175u;

}  // namespace lintfix
