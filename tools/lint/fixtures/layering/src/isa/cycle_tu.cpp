// Translation unit that pulls the seeded cycle into the fixture build so the
// headers stay compilable despite the (pragma-once-tolerated) cycle.
#include "safedm/isa/cyc_a.hpp"

namespace lintfix {

std::uint32_t cycle_sum() { return kCycA + kCycB; }

}  // namespace lintfix
