// Half of a seeded include cycle: isa -> assembler -> isa. Both the
// subsystem-level cycle and the header-level cycle must be flagged.
#pragma once

#include <cstdint>

#include "safedm/assembler/cyc_b.hpp"

namespace lintfix {

inline constexpr std::uint32_t kCycA = 0xAu;

}  // namespace lintfix
