// Other half of the seeded include cycle: assembler -> isa -> assembler.
#pragma once

#include <cstdint>

#include "safedm/isa/cyc_a.hpp"

namespace lintfix {

inline constexpr std::uint32_t kCycB = 0xBu;

}  // namespace lintfix
