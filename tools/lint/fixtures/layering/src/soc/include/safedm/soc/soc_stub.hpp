// Layer-3 stub header for the layering fixtures. Including a lower layer
// (common) from here is the allowed direction and must stay silent.
#pragma once

#include <cstdint>

#include "safedm/common/bits_stub.hpp"

namespace lintfix {

inline constexpr std::uint32_t kSocStub = kBitsStub + 1u;

}  // namespace lintfix
