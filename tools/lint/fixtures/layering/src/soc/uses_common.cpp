// Clean counter-example: soc (layer 3) depending on common (layer 0) follows
// the allowed direction and must not be flagged.
#include "safedm/common/bits_stub.hpp"

namespace lintfix {

std::uint32_t soc_uses_common() { return kBitsStub; }

}  // namespace lintfix
