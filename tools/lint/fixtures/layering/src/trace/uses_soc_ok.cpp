// Annotated counter-example: trace (layer 2) including soc (layer 3) is a
// back-edge, but the allow-layer escape below suppresses it. If the escape
// ever stops being needed it will be reported as stale instead.
// lint: allow-layer(fixture: mirrors the tracer's soc introspection hooks)
#include "safedm/soc/soc_stub.hpp"

namespace lintfix {

std::uint32_t trace_reads_soc() { return kSocStub; }

}  // namespace lintfix
