#include "snapshot_missing.hpp"

namespace lintfix {

void Widget::save_state(StateWriter& w) const {
  w.put_u64(saved_ok_);
  w.put_u64(missing_restore_);
}

void Widget::restore_state(StateReader& r) {
  saved_ok_ = r.get_u64();
  missing_save_ = r.get_u64();
  annotated_cache_ = saved_ok_ * kScale_;
}

}  // namespace lintfix
