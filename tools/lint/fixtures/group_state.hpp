// Group-monitor snapshot pattern (mirrors SafeDm's N-replica state): a
// pairwise matrix of per-pair counters that must round-trip, derived pair
// topology that is annotated away, and two seeded violations
// (out-of-line bodies live in group_state.cpp):
//   verdict_needed_   lowered policy threshold, no annotation, in neither
//                     snapshot body — must fire
//   pair_select_      APB mux register saved but never restored — must fire
// Exempt, must NOT be flagged:
//   pair_replicas_    derived from the replica count, annotated
//   pair_counters_    serialized element-wise in both bodies
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "state_stub.hpp"

namespace lintfix {

class GroupMonitor {
 public:
  explicit GroupMonitor(unsigned replicas);

  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  struct PairCell {
    std::uint64_t nodiv = 0;
    std::uint64_t zero_stag = 0;
  };

  using PairIndex = std::pair<std::uint8_t, std::uint8_t>;

  // (pair_replicas_ is declared last: a `no-snapshot` annotation also covers
  // the next line — comment-above style — so a seeded violation must not sit
  // directly below it.)
  unsigned num_replicas_ = 2;
  unsigned verdict_needed_ = 1;
  std::vector<PairCell> pair_counters_;
  std::uint32_t pair_select_ = 0;
  std::vector<PairIndex> pair_replicas_;  // lint: no-snapshot(derived from num_replicas_)
};

}  // namespace lintfix
