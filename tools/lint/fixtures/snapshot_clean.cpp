#include "snapshot_clean.hpp"

namespace lintfix {

std::uint64_t roundtrip_gauge() {
  Gauge g;
  StateWriter w;
  g.save_state(w);
  StateReader r;
  g.restore_state(r);
  return g.crc();
}

}  // namespace lintfix
