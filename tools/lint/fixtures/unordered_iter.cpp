// Seeded unordered-iteration violation: the range-for over an unordered_map
// must be flagged; iterating a vector, or an annotated unordered range-for,
// must not be.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lintfix {

std::uint64_t bad_unordered_sum(const std::unordered_map<std::string, std::uint64_t>& histogram) {
  std::uint64_t acc = 0;
  for (const auto& entry : histogram) acc = acc * 31 + entry.second;
  return acc;
}

std::uint64_t allowed_unordered_sum(const std::unordered_map<int, std::uint64_t>& counts) {
  std::uint64_t acc = 0;
  // lint: allow-unordered-iteration(commutative sum, order cannot leak)
  for (const auto& entry : counts) acc += entry.second;
  return acc;
}

std::uint64_t fine_vector_sum(const std::vector<std::uint64_t>& values) {
  std::uint64_t acc = 0;
  for (std::uint64_t v : values) acc = acc * 31 + v;
  return acc;
}

}  // namespace lintfix
