// Lexer regression fixtures: raw string literals (including encoding
// prefixes and custom delimiters) and `\`-continued lines must not leak
// their contents into the token stream. Only the real std::rand() call at
// the bottom may fire.
#include <cstdlib>

namespace lintfix {

// Plain raw string: contents are not code.
inline const char* kRaw = R"(calls rand() and time(nullptr) but is just text)";

// Custom delimiter with an embedded `)quoted"` that must not end the string.
inline const char* kDelim = R"abc(embedded )quoted" and rand() stay text)abc";

// Encoding prefix: LR"..." is a raw string too; the embedded quote must not
// flip the lexer back into code mid-literal.
inline const wchar_t* kWide = LR"(a quote " then rand() still inside the literal)";

// Macro definitions continue across `\` line breaks; every continued line
// is preprocessor text, not code.
#define LINTFIX_MIX(dst, v)        \
  do {                             \
    (dst) += (v) + time(nullptr);  \
  } while (false)

// A `\`-continued // comment keeps the next line inside the comment: \
   rand() here is still comment text, not a call

unsigned real_violation() { return static_cast<unsigned>(std::rand()); }  // seeded: must fire

}  // namespace lintfix
