// Seeded using-namespace-header violation (the annotated one is exempt).
#pragma once

#include <string>

namespace lintfix {

using namespace std::string_literals;

namespace detail {
// lint: allow-using-namespace(fixture: escape hatch demo)
using namespace std::string_literals;
}  // namespace detail

}  // namespace lintfix
