// Stale escape hatches at statement level:
//   the allow-nondeterminism below covers plain arithmetic  (must be flagged)
//   the guarded-by attaches to a function, not a member     (must be flagged)
//   the file-scope no-snapshot attaches to no member        (must be flagged)
#include "stale.hpp"

namespace lintfix {

std::uint64_t doubled(std::uint64_t v) {
  // lint: allow-nondeterminism(stale: nothing nondeterministic on this line)
  return v * 2;
}

// lint: guarded-by(mutex_)
std::uint64_t not_a_member(std::uint64_t v) { return v + 1; }

// lint: no-snapshot(stale: this is not a member declaration)
std::uint64_t kFileScopeValue = 7;

}  // namespace lintfix
