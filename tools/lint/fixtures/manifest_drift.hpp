// Snapshot-format drift fixtures, diffed against the fixture manifest
// (snapshot_manifest.txt in this directory):
//   DriftRecord    gained added_field_ without a version bump (must be flagged)
//   StableRecord   matches its manifest row                    (must NOT be flagged)
//   RebuiltRecord  bumped its version; the manifest row is v1  (stale-manifest finding)
// The manifest also lists GhostRecord, which no longer exists (must be flagged).
#pragma once

#include <cstdint>

#include "state_stub.hpp"

namespace lintfix {

class DriftRecord {
 public:
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  std::uint64_t cursor_ = 0;
  std::uint64_t added_field_ = 0;
};

class StableRecord {
 public:
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  std::uint64_t value_ = 0;
};

class RebuiltRecord {
 public:
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  std::uint64_t value_ = 0;
};

}  // namespace lintfix
