// Fully covered snapshot pair with inline bodies — must produce zero
// findings. Exercises the inline-body capture path of the parser.
#pragma once

#include <cstdint>

#include "state_stub.hpp"

namespace lintfix {

class Gauge {
 public:
  void save_state(StateWriter& w) const {
    w.put_u64(level_);
    w.put_u64(peak_);
  }

  void restore_state(StateReader& r) {
    level_ = r.get_u64();
    peak_ = r.get_u64();
    crc_memo_ = level_ ^ peak_;
  }

  std::uint64_t crc() const { return crc_memo_; }

 private:
  std::uint64_t level_ = 0;
  std::uint64_t peak_ = 0;
  // lint: no-snapshot(derived memo, rebuilt at the end of restore_state)
  std::uint64_t crc_memo_ = 0;
};

}  // namespace lintfix
