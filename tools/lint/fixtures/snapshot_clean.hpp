// Fully covered snapshot pair with inline bodies — must produce zero
// findings. Exercises the inline-body capture path of the parser.
#pragma once

#include <cstdint>

#include "state_stub.hpp"

namespace lintfix {

class Gauge {
 public:
  void save_state(StateWriter& w) const {
    w.put_u64(level_);
    w.put_u64(peak_);
  }

  void restore_state(StateReader& r) {
    level_ = r.get_u64();
    peak_ = r.get_u64();
    crc_memo_ = level_ ^ peak_;
  }

  std::uint64_t crc() const { return crc_memo_; }

 private:
  std::uint64_t level_ = 0;
  std::uint64_t peak_ = 0;
  // lint: no-snapshot(derived memo, rebuilt at the end of restore_state)
  std::uint64_t crc_memo_ = 0;
};

// SoA fast-path idiom (mirrors src/safedm/comparator.hpp after the
// bit-sliced refactor): raw plane views into an attached producer plus
// geometry/bookkeeping derived from it are rebuilt by resync() rather than
// serialized, so every such member carries a `no-snapshot` annotation and
// only the genuine state (stats_) round-trips. Must produce zero findings.
class SlicedMirror {
 public:
  void save_state(StateWriter& w) const { w.put_u64(stats_); }

  void restore_state(StateReader& r) {
    stats_ = r.get_u64();
    resync();
  }

 private:
  void resync() { mismatch_mask_ = values_ != nullptr ? stride_ : 0; }

  const std::uint64_t* values_ = nullptr;  // lint: no-snapshot(stable raw plane view, rebound by attach)
  const std::uint8_t* enables_ = nullptr;  // lint: no-snapshot(stable raw plane view, rebound by attach)
  std::uint32_t stride_ = 0;        // lint: no-snapshot(producer geometry, derived)
  std::uint64_t mismatch_mask_ = 0; // lint: no-snapshot(rebuilt by resync())
  std::uint64_t stats_ = 0;
};

}  // namespace lintfix
