// Seeded snapshot-completeness violations (out-of-line bodies live in
// snapshot_missing.cpp):
//   missing_restore_  written by save_state, never read back
//   missing_save_     restored, never saved
//   missing_both_     in neither body
//   plane_view_       SoA-style raw plane pointer with no `no-snapshot`
//                     annotation (mutable pointers are NOT auto-exempt:
//                     forgetting the annotation on a fast-path view must
//                     fire, unlike the annotated mirrors in snapshot_clean)
// Exempt, must NOT be flagged:
//   annotated_cache_  carries `// lint: no-snapshot(reason)`
//   sink_             reference member (cannot be reseated)
//   kScale_           const member (cannot be reassigned on restore)
#pragma once

#include <cstdint>

#include "state_stub.hpp"

namespace lintfix {

class Widget {
 public:
  explicit Widget(StateWriter& sink) : sink_(sink) {}

  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  std::uint64_t saved_ok_ = 0;
  std::uint64_t missing_restore_ = 0;
  std::uint64_t missing_save_ = 0;
  std::uint64_t missing_both_ = 0;
  const std::uint64_t* plane_view_ = nullptr;
  std::uint64_t annotated_cache_ = 0;  // lint: no-snapshot(rebuilt from saved_ok_ on restore)
  StateWriter& sink_;
  const std::uint64_t kScale_ = 8;
};

}  // namespace lintfix
