// Self-contained stand-ins for safedm::StateWriter/StateReader so the
// snapshot-completeness fixtures compile without linking the simulator.
#pragma once

#include <cstdint>

namespace lintfix {

class StateWriter {
 public:
  void begin_section(const char* tag, std::uint32_t version) {
    last_ = static_cast<std::uint64_t>(tag[0]) + version;
  }
  void end_section() {}
  void put_u64(std::uint64_t v) { last_ = v; }

 private:
  std::uint64_t last_ = 0;
};

class StateReader {
 public:
  std::uint32_t begin_section(const char* tag) {
    return static_cast<std::uint32_t>(tag[0]) + static_cast<std::uint32_t>(pos_);
  }
  void end_section() {}
  std::uint64_t get_u64() { return ++pos_; }

 private:
  std::uint64_t pos_ = 0;
};

}  // namespace lintfix
