#include "guarded.hpp"

namespace lintfix {

void JobQueue::push(std::uint64_t v) {
  std::lock_guard<std::mutex> lock(mutex_);
  jobs_.push_back(v);
  ++pushes_;
}

std::uint64_t JobQueue::unsafe_peek() const {
  return jobs_.empty() ? 0 : jobs_.front();  // seeded: no lock on mutex_
}

std::uint64_t JobQueue::racy_size_hint() const {
  // lint: allow-unguarded(fixture: advisory size hint, staleness tolerated)
  return pushes_;
}

std::size_t JobQueue::locked_size() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return jobs_.size();
}

}  // namespace lintfix
