// Lock-discipline fixtures: members annotated `guarded-by(mutex_)` may only
// be touched under a lock_guard/unique_lock/scoped_lock on that mutex.
//   unsafe_peek()     reads jobs_ with no lock      (must be flagged)
//   racy_size_hint()  reads pushes_ via the escape  (must NOT be flagged)
//   push()/locked_size() lock correctly             (must NOT be flagged)
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

namespace lintfix {

class JobQueue {
 public:
  void push(std::uint64_t v);
  std::uint64_t unsafe_peek() const;
  std::uint64_t racy_size_hint() const;
  std::size_t locked_size() const;

 private:
  mutable std::mutex mutex_;
  std::deque<std::uint64_t> jobs_;  // lint: guarded-by(mutex_)
  std::uint64_t pushes_ = 0;        // lint: guarded-by(mutex_)
};

}  // namespace lintfix
