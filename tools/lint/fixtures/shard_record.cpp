#include "shard_record.hpp"

namespace lintfix {

void ShardRecord::save_state(StateWriter& w) const {
  w.put_u64(next_site_ok_);
  w.put_u64(torn_records_);
}

void ShardRecord::restore_state(StateReader& r) { next_site_ok_ = r.get_u64(); }

}  // namespace lintfix
