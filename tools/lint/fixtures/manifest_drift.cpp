#include "manifest_drift.hpp"

namespace lintfix {

void DriftRecord::save_state(StateWriter& w) const {
  w.begin_section("DRFT", 1);
  w.put_u64(cursor_);
  w.put_u64(added_field_);
  w.end_section();
}

void DriftRecord::restore_state(StateReader& r) {
  r.begin_section("DRFT");
  cursor_ = r.get_u64();
  added_field_ = r.get_u64();
  r.end_section();
}

void StableRecord::save_state(StateWriter& w) const {
  w.begin_section("STBL", 1);
  w.put_u64(value_);
  w.end_section();
}

void StableRecord::restore_state(StateReader& r) {
  r.begin_section("STBL");
  value_ = r.get_u64();
  r.end_section();
}

void RebuiltRecord::save_state(StateWriter& w) const {
  w.begin_section("RBLT", 2);
  w.put_u64(value_);
  w.end_section();
}

void RebuiltRecord::restore_state(StateReader& r) {
  r.begin_section("RBLT");
  value_ = r.get_u64();
  r.end_section();
}

}  // namespace lintfix
