#include "group_state.hpp"

namespace lintfix {

GroupMonitor::GroupMonitor(unsigned replicas) : num_replicas_(replicas) {
  pair_counters_.resize(replicas * (replicas - 1) / 2);
  for (std::uint8_t i = 0; i < replicas; ++i)
    for (std::uint8_t j = static_cast<std::uint8_t>(i + 1); j < replicas; ++j)
      pair_replicas_.emplace_back(i, j);
}

void GroupMonitor::save_state(StateWriter& w) const {
  w.put_u64(num_replicas_);
  for (const PairCell& cell : pair_counters_) {
    w.put_u64(cell.nodiv);
    w.put_u64(cell.zero_stag);
  }
  w.put_u64(pair_select_);
}

void GroupMonitor::restore_state(StateReader& r) {
  num_replicas_ = static_cast<unsigned>(r.get_u64());
  for (PairCell& cell : pair_counters_) {
    cell.nodiv = r.get_u64();
    cell.zero_stag = r.get_u64();
  }
}

}  // namespace lintfix
