// Seeded snapshot-completeness violations on a shard-log record struct
// (shaped like the fleet layer's streamed partials, src/faultsim/shard.hpp):
// a record field that is appended to the log but never restored would
// silently desynchronize a crash/resume cycle, so the lint must cover
// these structs like any other snapshot pair.
//   next_site_ok_  round-trips correctly (must NOT be flagged)
//   fingerprint_   in neither body
//   torn_records_  saved, never restored
#pragma once

#include <cstdint>

#include "state_stub.hpp"

namespace lintfix {

class ShardRecord {
 public:
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  std::uint64_t next_site_ok_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t torn_records_ = 0;
};

}  // namespace lintfix
