// Seeded header-guard violation: no `#pragma once`, no #ifndef guard.

#include <cstdint>

namespace lintfix {

inline std::uint64_t unguarded_helper(std::uint64_t v) { return v + 1; }

}  // namespace lintfix
