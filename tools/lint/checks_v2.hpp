// The v2 cross-TU checks: lock-discipline, snapshot-format drift against
// the checked-in manifest, and stale-annotation detection.
#pragma once

#include <string>
#include <vector>

#include "symbols.hpp"

namespace safedm::lint {

/// Lock-discipline over one file. `applicable` is the subset of the guarded
/// registry whose declaring file shares this file's stem and subsystem
/// (thread_pool.hpp governs thread_pool.cpp and vice versa).
void check_lock_discipline(const SourceFile& f, const std::vector<Tok>& toks,
                           const std::vector<GuardedMember>& applicable, AnnotationUse& used,
                           std::vector<Finding>& out);

/// One manifest row: a save_state class with a tagged section.
struct ManifestEntry {
  std::string cls;
  std::string tag;      // section fourcc
  std::string version;  // resolved to decimal when possible
  std::vector<std::string> members;  // sorted serialized member set
  std::string file;     // save body location, for findings
  int line = 0;
};

/// Collect the manifest entries from the merged symbol tables. `constants`
/// resolves symbolic version arguments (e.g. kShardLogVersion).
std::vector<ManifestEntry> collect_manifest(
    const std::vector<ClassRec>& classes, const std::map<std::string, Bodies>& bodies,
    const std::map<std::string, std::string>& constants);

/// Canonical text form (sorted, with a regeneration header).
std::string render_manifest(const std::vector<ManifestEntry>& entries);

/// Diff `entries` against the checked-in manifest at `path`; findings point
/// at the save body (drift) or at `display` (manifest-side problems).
void check_manifest_drift(const std::vector<ManifestEntry>& entries, const std::string& path,
                          const std::string& display, std::vector<Finding>& out);

/// Every escape-hatch annotation that suppressed nothing is a finding.
/// `claimed_no_snapshot` is the set of (path, line) no-snapshot annotations
/// attached to a parsed member declaration (the snapshot-completeness pass
/// decides used/stale for those); unclaimed ones are dangling.
void check_stale_annotations(const std::vector<SourceFile>& files, const AnnotationUse& used,
                             const std::set<std::pair<std::string, int>>& claimed_no_snapshot,
                             const std::vector<GuardedMember>& guarded,
                             std::vector<Finding>& out);

}  // namespace safedm::lint
