#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "checks_v2.hpp"
#include "graph.hpp"
#include "safedm/common/thread_pool.hpp"
#include "symbols.hpp"

namespace safedm::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexing: comment/string blanking + annotation capture
// ---------------------------------------------------------------------------

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

bool plain_identifier(const std::string& s) {
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!ident_char(c)) return false;
  }
  return true;
}

const std::set<std::string>& known_annotation_kinds() {
  static const std::set<std::string> kinds = {
      "no-snapshot",
      "allow-nondeterminism",
      "allow-unordered-iteration",
      "allow-using-namespace",
      "guarded-by",
      "allow-unguarded",
      "allow-layer",
  };
  return kinds;
}

// Parse a `lint: kind(reason)` marker out of one comment's text. A marker
// must START the comment (`// lint: ...`); mentions of the syntax mid-prose
// are not markers. Malformed markers (unknown kind, missing or empty
// reason) are reported instead of silently ignored, so a typo cannot
// quietly disable a check.
void scan_comment(const std::string& text, int line, SourceFile& out) {
  const std::size_t pos = text.find("lint:");
  if (pos == std::string::npos) return;
  if (text.find_first_not_of(" \t") != pos) return;  // prose before the marker
  {
    std::size_t i = pos + 5;
    while (i < text.size() && text[i] == ' ') ++i;
    std::size_t kind_begin = i;
    while (i < text.size() && (ident_char(text[i]) || text[i] == '-')) ++i;
    const std::string kind = text.substr(kind_begin, i - kind_begin);
    while (i < text.size() && text[i] == ' ') ++i;
    std::string reason;
    bool has_paren = i < text.size() && text[i] == '(';
    if (has_paren) {
      std::size_t close = text.find(')', i + 1);
      if (close == std::string::npos) {
        has_paren = false;
      } else {
        reason = text.substr(i + 1, close - i - 1);
      }
    }
    const bool known = known_annotation_kinds().count(kind) != 0;
    const bool reasoned = has_paren && reason.find_first_not_of(" \t") != std::string::npos;
    if (known && reasoned && kind == "guarded-by" && !plain_identifier(reason)) {
      out.bad_annotations.push_back(
          {out.path, line, "bad-annotation",
           "`lint: guarded-by` takes the mutex member's name, not prose: `" + reason + "`"});
    } else if (known && reasoned) {
      out.annotations[line][kind] = reason;
    } else {
      out.bad_annotations.push_back(
          {out.path, line, "bad-annotation",
           known ? "`lint: " + kind + "` requires a non-empty (reason)"
                 : "unknown lint annotation `" + kind + "`"});
    }
  }
}

// Blank comments, string literals, and char literals from the source while
// preserving the line structure, collecting `// lint:` annotations and
// string-literal contents (keyed by the opening quote's offset) as we go.
std::string blank_code(const std::vector<std::string>& lines, SourceFile& out) {
  std::string src;
  for (const std::string& l : lines) {
    src += l;
    src += '\n';
  }
  std::string code = src;
  enum class St { Code, Line, Block, Str, Chr, Raw };
  St st = St::Code;
  std::string comment;
  std::string raw_delim;
  std::string str_val;
  std::size_t str_start = 0;
  int line = 1;
  int comment_line = 1;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::Code:
        if (c == '/' && next == '/') {
          st = St::Line;
          comment.clear();
          comment_line = line;
          code[i] = code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::Block;
          comment.clear();
          comment_line = line;
          code[i] = code[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" raw strings end at the matching delimiter.
          // The R may carry an encoding prefix: u8R, uR, UR, LR.
          bool raw = false;
          if (i > 0 && src[i - 1] == 'R') {
            std::size_t q = i - 1;  // start of the prefix
            if (q > 0 && (src[q - 1] == 'u' || src[q - 1] == 'U' || src[q - 1] == 'L')) {
              --q;
            } else if (q > 1 && src[q - 1] == '8' && src[q - 2] == 'u') {
              q -= 2;
            }
            raw = q == 0 || !ident_char(src[q - 1]);
          }
          if (raw) {
            std::size_t open = src.find('(', i + 1);
            if (open == std::string::npos) break;  // malformed; give up quietly
            raw_delim = ")" + src.substr(i + 1, open - i - 1) + "\"";
            // Blank the open delimiter too — `R"abc(` must not leak an
            // `abc` identifier token.
            for (std::size_t k = i + 1; k <= open; ++k) code[k] = ' ';
            i = open;  // contents start after `(`; Raw state blanks them
            st = St::Raw;
          } else {
            st = St::Str;
            str_start = i;
            str_val.clear();
          }
        } else if (c == '\'' && !(i > 0 && ident_char(src[i - 1]))) {
          // `'` after an identifier char is a digit separator (0x8000'0000).
          st = St::Chr;
        }
        break;
      case St::Line:
        if (c == '\n') {
          if (i > 0 && src[i - 1] == '\\') break;  // `\`-continued comment line
          scan_comment(comment, comment_line, out);
          st = St::Code;
        } else {
          comment += c;
          code[i] = ' ';
        }
        break;
      case St::Block:
        if (c == '*' && next == '/') {
          scan_comment(comment, comment_line, out);
          code[i] = code[i + 1] = ' ';
          ++i;
          st = St::Code;
        } else {
          comment += c;
          if (c != '\n') code[i] = ' ';
        }
        break;
      case St::Str:
        if (c == '\\') {
          str_val += c;
          code[i] = ' ';
          if (next != '\n') {
            str_val += next;
            code[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          out.string_literals[str_start] = str_val;
          st = St::Code;
        } else if (c != '\n') {
          str_val += c;
          code[i] = ' ';
        }
        break;
      case St::Chr:
        if (c == '\\') {
          code[i] = ' ';
          if (next != '\n') code[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::Code;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
      case St::Raw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) code[i + k] = ' ';
          i += raw_delim.size() - 1;
          st = St::Code;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
    }
    if (c == '\n') {
      if (st == St::Chr) st = St::Code;  // unterminated char on one line: bail out
      ++line;
    }
  }
  if (st == St::Line) scan_comment(comment, comment_line, out);
  return code;
}

// ---------------------------------------------------------------------------
// Per-file checks
// ---------------------------------------------------------------------------

void check_determinism(const SourceFile& f, const std::vector<Tok>& toks, AnnotationUse& used,
                       std::vector<Finding>& out) {
  // Names of variables/members declared with an unordered container type in
  // this file — range-for over any of them is flagged.
  std::set<std::string> unordered_names;
  static const std::set<std::string> unordered_types = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  const std::size_t n = toks.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (toks[i].kind != Tok::kIdent || !unordered_types.count(toks[i].text)) continue;
    std::size_t j = i + 1;
    if (j < n && is_punct(toks[j], "<")) j = skip_template_args(toks, j);
    while (j < n && (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
                     is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j < n && toks[j].kind == Tok::kIdent) unordered_names.insert(toks[j].text);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const Tok& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    const bool member_access = i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    const bool called = i + 1 < n && is_punct(toks[i + 1], "(");

    if (t.text == "random_device" || t.text == "system_clock") {
      const int al = annotation_line(f, t.line, "allow-nondeterminism");
      if (al != 0) {
        used.mark(f, al, "allow-nondeterminism");
      } else {
        out.push_back({f.path, t.line, "nondeterminism",
                       "`" + t.text + "` is nondeterministic; use safedm::Rng / steady_clock "
                       "(escape: `// lint: allow-nondeterminism(reason)`)"});
      }
      continue;
    }
    if ((t.text == "rand" || t.text == "srand" || t.text == "time" || t.text == "clock") &&
        called && !member_access) {
      const int al = annotation_line(f, t.line, "allow-nondeterminism");
      if (al != 0) {
        used.mark(f, al, "allow-nondeterminism");
      } else {
        out.push_back({f.path, t.line, "nondeterminism",
                       "`" + t.text + "()` is nondeterministic; results must be seed-derived "
                       "(escape: `// lint: allow-nondeterminism(reason)`)"});
      }
      continue;
    }
    if (t.text == "for" && called) {
      // Range-for: a top-level `:` inside the parens (classic for has `;`).
      std::size_t close = skip_balanced(toks, i + 1, "(", ")");
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_punct(toks[j], "(") || is_punct(toks[j], "[") || is_punct(toks[j], "{")) ++depth;
        else if (is_punct(toks[j], ")") || is_punct(toks[j], "]") || is_punct(toks[j], "}")) --depth;
        else if (depth == 1 && is_punct(toks[j], ";")) break;  // classic for
        else if (depth == 1 && is_punct(toks[j], ":") && toks[j].text != "::") {
          colon = j;
          break;
        }
      }
      if (colon != 0) {
        for (std::size_t j = colon + 1; j + 1 < close; ++j) {
          if (toks[j].kind == Tok::kIdent && unordered_names.count(toks[j].text)) {
            const int al = annotation_line(f, toks[i].line, "allow-unordered-iteration");
            if (al != 0) {
              used.mark(f, al, "allow-unordered-iteration");
            } else {
              out.push_back(
                  {f.path, toks[i].line, "unordered-iteration",
                   "iteration over unordered container `" + toks[j].text +
                       "` has unspecified order "
                       "(escape: `// lint: allow-unordered-iteration(reason)`)"});
            }
            break;
          }
        }
      }
    }
  }
}

void check_header_hygiene(const SourceFile& f, const std::vector<Tok>& toks, AnnotationUse& used,
                          std::vector<Finding>& out) {
  if (!header_is_guarded(f.raw_lines)) {
    out.push_back({f.path, 1, "header-guard",
                   "header lacks `#pragma once` (or an #ifndef/#define include guard)"});
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i], "using") && is_ident(toks[i + 1], "namespace")) {
      const int al = annotation_line(f, toks[i].line, "allow-using-namespace");
      if (al != 0) {
        used.mark(f, al, "allow-using-namespace");
      } else {
        out.push_back({f.path, toks[i].line, "using-namespace-header",
                       "`using namespace` in a header leaks into every includer "
                       "(escape: `// lint: allow-using-namespace(reason)`)"});
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

int annotation_line(const SourceFile& f, int line, const std::string& kind) {
  for (int l : {line, line - 1}) {
    auto it = f.annotations.find(l);
    if (it != f.annotations.end() && it->second.count(kind)) return l;
  }
  return 0;
}

const std::string* annotation_reason(const SourceFile& f, int line, const std::string& kind) {
  for (int l : {line, line - 1}) {
    auto it = f.annotations.find(l);
    if (it != f.annotations.end()) {
      auto kit = it->second.find(kind);
      if (kit != it->second.end()) return &kit->second;
    }
  }
  return nullptr;
}

bool load_source(const std::string& disk_path, const std::string& report_path, bool determinism,
                 SourceFile& out) {
  std::ifstream in(disk_path, std::ios::binary);
  if (!in) return false;
  out.path = report_path;
  out.determinism = determinism;
  out.subsystem = subsystem_of(report_path);
  const auto dot = report_path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : report_path.substr(dot);
  out.is_header = ext == ".hpp" || ext == ".h" || ext == ".hh";
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    out.raw_lines.push_back(line);
  }
  out.annotations.clear();
  out.string_literals.clear();
  out.bad_annotations.clear();
  out.code = blank_code(out.raw_lines, out);
  return true;
}

LintResult run_checks(const std::vector<SourceFile>& files, const LintOptions& opt) {
  LintResult res;
  const std::size_t n = files.size();

  // Pass 1 (parallel): lex + parse every file into its symbol contribution.
  std::vector<FileSymbols> syms(n);
  ThreadPool pool(opt.jobs);
  pool.parallel_for(n, [&](std::size_t i) { syms[i] = analyze_file(files[i]); });

  // Merge into the cross-TU tables, in deterministic file order.
  std::vector<ClassRec> classes;
  std::map<std::string, Bodies> bodies;
  std::map<std::string, std::string> constants;
  std::vector<GuardedMember> guarded;
  for (std::size_t i = 0; i < n; ++i) {
    FileSymbols& s = syms[i];
    for (ClassRec& rec : s.classes) classes.push_back(std::move(rec));
    for (auto& [cls, b] : s.bodies) {
      Bodies& dst = bodies[cls];
      for (const BodyInfo* src : {&b.save, &b.restore}) {
        BodyInfo& d = src == &b.save ? dst.save : dst.restore;
        if (!src->present) continue;
        d.present = true;
        d.idents.insert(src->idents.begin(), src->idents.end());
        if (d.file.empty()) {
          d.file = src->file;
          d.line = src->line;
        }
        if (d.section_tag.empty()) {
          d.section_tag = src->section_tag;
          d.version_token = src->version_token;
        }
      }
    }
    constants.insert(s.constants.begin(), s.constants.end());
    guarded.insert(guarded.end(), s.guarded.begin(), s.guarded.end());
  }

  // Pass 2 (parallel): per-file checks; results merged in file order.
  struct PerFile {
    std::vector<Finding> findings;
    AnnotationUse used;
  };
  std::vector<PerFile> per(n);
  pool.parallel_for(n, [&](std::size_t i) {
    const SourceFile& f = files[i];
    PerFile& p = per[i];
    if (f.determinism) check_determinism(f, syms[i].toks, p.used, p.findings);
    if (f.is_header) check_header_hygiene(f, syms[i].toks, p.used, p.findings);
    std::vector<GuardedMember> applicable;
    const std::string stem = path_stem(f.path);
    for (const GuardedMember& g : guarded) {
      if (g.stem == stem && g.subsystem == f.subsystem) applicable.push_back(g);
    }
    check_lock_discipline(f, syms[i].toks, applicable, p.used, p.findings);
    p.findings.insert(p.findings.end(), f.bad_annotations.begin(), f.bad_annotations.end());
  });

  std::vector<Finding> findings;
  AnnotationUse used;
  for (PerFile& p : per) {
    findings.insert(findings.end(), p.findings.begin(), p.findings.end());
    used.merge(p.used);
  }

  // Pass 3 (serial): cross-TU checks over the merged tables.
  // Snapshot-completeness, marking which no-snapshot annotations earned
  // their keep. `claimed` = annotations attached to a parsed member.
  std::set<std::pair<std::string, int>> claimed;
  for (const ClassRec& rec : classes) {
    const bool both = rec.declares_save && rec.declares_restore;
    auto it = bodies.find(rec.name);
    const bool have_bodies =
        both && it != bodies.end() && it->second.save.present && it->second.restore.present;
    std::set<std::string> reported;  // one finding per field even if declared twice
    for (const Member& m : rec.members) {
      if (m.no_snapshot) {
        claimed.insert({rec.file->path, m.annot_line});
        bool would_fire = false;
        if (both && !have_bodies) {
          would_fire = true;  // bodies outside the scanned set — don't call it stale
        } else if (have_bodies && !m.auto_exempt) {
          would_fire = !(it->second.save.idents.count(m.name) &&
                         it->second.restore.idents.count(m.name));
        }
        if (would_fire) used.mark(*rec.file, m.annot_line, "no-snapshot");
      }
      if (!have_bodies || m.auto_exempt || m.no_snapshot) continue;
      if (!reported.insert(m.name).second) continue;
      const bool in_save = it->second.save.idents.count(m.name) != 0;
      const bool in_restore = it->second.restore.idents.count(m.name) != 0;
      if (in_save && in_restore) continue;
      std::string where = !in_save && !in_restore ? "save_state or restore_state"
                          : !in_save              ? "save_state"
                                                  : "restore_state";
      findings.push_back({rec.file->path, m.line, "snapshot-completeness",
                          "class `" + rec.name + "`: field `" + m.name +
                              "` is not referenced in " + where +
                              " (escape: `// lint: no-snapshot(reason)`)"});
    }
  }

  // Layering DAG over the actual include edges, plus file-level cycles.
  check_layering(files, used, findings);
  {
    const IncludeGraph g = build_include_graph(files, {});
    const std::vector<std::string> cyc = find_file_cycle(g);
    if (!cyc.empty()) {
      int line = 1;
      auto eit = g.edges.find(cyc[0]);
      if (eit != g.edges.end()) {
        for (const auto& [to, l] : eit->second) {
          if (to == cyc[1]) line = l;
        }
      }
      std::string rendered;
      for (const std::string& p : cyc) rendered += (rendered.empty() ? "" : " -> ") + p;
      findings.push_back(
          {cyc[0], line, "layering", "header include cycle: " + rendered + " (break one edge)"});
    }
  }

  // Snapshot-format drift against the checked-in manifest.
  const std::vector<ManifestEntry> manifest = collect_manifest(classes, bodies, constants);
  res.manifest_text = render_manifest(manifest);
  if (!opt.manifest_path.empty() && !opt.update_manifest) {
    check_manifest_drift(manifest, opt.manifest_path,
                         opt.manifest_display.empty() ? opt.manifest_path : opt.manifest_display,
                         findings);
  }

  // Stale annotations last — every earlier check has voted by now.
  check_stale_annotations(files, used, claimed, guarded, findings);

  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end()), findings.end());
  res.findings = std::move(findings);
  return res;
}

std::string format(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": [" << f.check << "] " << f.message;
  return os.str();
}

std::vector<std::string> compile_commands_files(const std::string& json_path) {
  std::ifstream in(json_path, std::ios::binary);
  std::vector<std::string> out;
  if (!in) return out;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();

  // Scan for "key" : "value" string pairs, tracking object boundaries.
  // compile_commands.json is a flat array of objects, so this is enough.
  std::string dir, file;
  auto read_string = [&s](std::size_t& i) {
    std::string v;
    ++i;  // opening quote
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        v += s[i] == 'n' ? '\n' : s[i] == 't' ? '\t' : s[i];
      } else {
        v += s[i];
      }
      ++i;
    }
    ++i;  // closing quote
    return v;
  };
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    if (c == '}') {
      if (!file.empty()) {
        const bool absolute = file.front() == '/';
        out.push_back(absolute || dir.empty() ? file : dir + "/" + file);
      }
      dir.clear();
      file.clear();
      ++i;
    } else if (c == '"') {
      std::string key = read_string(i);
      while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == ':')) {
        if (s[i] == ':') {
          while (++i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n')) {
          }
          if (i < s.size() && s[i] == '"') {
            std::string value = read_string(i);
            if (key == "directory") dir = value;
            if (key == "file") file = value;
          }
          break;
        }
        ++i;
      }
    } else {
      ++i;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace safedm::lint
