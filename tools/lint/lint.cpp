#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace safedm::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexing: comment/string blanking + annotation capture
// ---------------------------------------------------------------------------

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

const std::set<std::string>& known_annotation_kinds() {
  static const std::set<std::string> kinds = {
      "no-snapshot",
      "allow-nondeterminism",
      "allow-unordered-iteration",
      "allow-using-namespace",
  };
  return kinds;
}

// Parse a `lint: kind(reason)` marker out of one comment's text. A marker
// must START the comment (`// lint: ...`); mentions of the syntax mid-prose
// are not markers. Malformed markers (unknown kind, missing or empty
// reason) are reported instead of silently ignored, so a typo cannot
// quietly disable a check.
void scan_comment(const std::string& text, int line, SourceFile& out) {
  const std::size_t pos = text.find("lint:");
  if (pos == std::string::npos) return;
  if (text.find_first_not_of(" \t") != pos) return;  // prose before the marker
  {
    std::size_t i = pos + 5;
    while (i < text.size() && text[i] == ' ') ++i;
    std::size_t kind_begin = i;
    while (i < text.size() && (ident_char(text[i]) || text[i] == '-')) ++i;
    const std::string kind = text.substr(kind_begin, i - kind_begin);
    while (i < text.size() && text[i] == ' ') ++i;
    std::string reason;
    bool has_paren = i < text.size() && text[i] == '(';
    if (has_paren) {
      std::size_t close = text.find(')', i + 1);
      if (close == std::string::npos) {
        has_paren = false;
      } else {
        reason = text.substr(i + 1, close - i - 1);
      }
    }
    const bool known = known_annotation_kinds().count(kind) != 0;
    const bool reasoned = has_paren && reason.find_first_not_of(" \t") != std::string::npos;
    if (known && reasoned) {
      out.annotations[line].insert(kind);
    } else {
      out.bad_annotations.push_back(
          {out.path, line, "bad-annotation",
           known ? "`lint: " + kind + "` requires a non-empty (reason)"
                 : "unknown lint annotation `" + kind + "`"});
    }
  }
}

// Blank comments, string literals, and char literals from the source while
// preserving the line structure, collecting `// lint:` annotations as we go.
std::string blank_code(const std::vector<std::string>& lines, SourceFile& out) {
  std::string src;
  for (const std::string& l : lines) {
    src += l;
    src += '\n';
  }
  std::string code = src;
  enum class St { Code, Line, Block, Str, Chr, Raw };
  St st = St::Code;
  std::string comment;
  std::string raw_delim;
  int line = 1;
  int comment_line = 1;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::Code:
        if (c == '/' && next == '/') {
          st = St::Line;
          comment.clear();
          comment_line = line;
          code[i] = code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::Block;
          comment.clear();
          comment_line = line;
          code[i] = code[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" raw strings end at the matching delimiter.
          bool raw = i > 0 && src[i - 1] == 'R' && (i < 2 || !ident_char(src[i - 2]));
          if (raw) {
            std::size_t open = src.find('(', i + 1);
            if (open == std::string::npos) break;  // malformed; give up quietly
            raw_delim = ")" + src.substr(i + 1, open - i - 1) + "\"";
            st = St::Raw;
          } else {
            st = St::Str;
          }
        } else if (c == '\'' && !(i > 0 && ident_char(src[i - 1]))) {
          // `'` after an identifier char is a digit separator (0x8000'0000).
          st = St::Chr;
        }
        break;
      case St::Line:
        if (c == '\n') {
          scan_comment(comment, comment_line, out);
          st = St::Code;
        } else {
          comment += c;
          code[i] = ' ';
        }
        break;
      case St::Block:
        if (c == '*' && next == '/') {
          scan_comment(comment, comment_line, out);
          code[i] = code[i + 1] = ' ';
          ++i;
          st = St::Code;
        } else {
          comment += c;
          if (c != '\n') code[i] = ' ';
        }
        break;
      case St::Str:
        if (c == '\\') {
          code[i] = ' ';
          if (next != '\n') code[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::Code;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
      case St::Chr:
        if (c == '\\') {
          code[i] = ' ';
          if (next != '\n') code[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::Code;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
      case St::Raw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) code[i + k] = ' ';
          i += raw_delim.size() - 1;
          st = St::Code;
        } else if (c != '\n') {
          code[i] = ' ';
        }
        break;
    }
    if (c == '\n') {
      if (st == St::Chr) st = St::Code;  // unterminated char on one line: bail out
      ++line;
    }
  }
  if (st == St::Line) scan_comment(comment, comment_line, out);
  return code;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Tok {
  enum Kind { kIdent, kNum, kPunct } kind;
  std::string text;
  int line;
};

std::vector<Tok> tokenize(const std::string& code) {
  std::vector<Tok> toks;
  int line = 1;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // preprocessor: drop the directive line (no continuations
      while (i < code.size() && code[i] != '\n') ++i;  // in this codebase)
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t b = i;
      while (i < code.size() && ident_char(code[i])) ++i;
      toks.push_back({Tok::kIdent, code.substr(b, i - b), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t b = i;
      while (i < code.size() && (ident_char(code[i]) || code[i] == '.')) ++i;
      toks.push_back({Tok::kNum, code.substr(b, i - b), line});
      continue;
    }
    if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      toks.push_back({Tok::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      toks.push_back({Tok::kPunct, "->", line});
      i += 2;
      continue;
    }
    toks.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Class / member model
// ---------------------------------------------------------------------------

struct Member {
  std::string name;
  int line = 0;
  bool exempt = false;  // reference/const member, or `no-snapshot` annotated
};

struct ClassRec {
  std::string name;
  const SourceFile* file = nullptr;
  std::vector<Member> members;
  bool declares_save = false;
  bool declares_restore = false;
};

struct Bodies {
  std::set<std::string> save_idents, restore_idents;
  bool has_save = false, has_restore = false;
};

struct ParseCtx {
  const SourceFile* file;
  std::vector<ClassRec>* classes;
  std::map<std::string, Bodies>* bodies;  // keyed by unqualified class name
};

bool annotated(const SourceFile& f, int line, const std::string& kind) {
  for (int l : {line, line - 1}) {
    auto it = f.annotations.find(l);
    if (it != f.annotations.end() && it->second.count(kind)) return true;
  }
  return false;
}

// Skip a balanced token group starting at toks[i] (which must be `open`).
// Returns the index one past the matching closer. Optionally collects the
// identifiers seen inside.
std::size_t skip_balanced(const std::vector<Tok>& toks, std::size_t i, const char* open,
                          const char* close, std::set<std::string>* idents = nullptr) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind == Tok::kPunct && toks[i].text == open) {
      ++depth;
    } else if (toks[i].kind == Tok::kPunct && toks[i].text == close) {
      if (--depth == 0) return i + 1;
    } else if (idents && toks[i].kind == Tok::kIdent) {
      idents->insert(toks[i].text);
    }
  }
  return i;
}

// Attempt to skip a template argument list starting at a `<`. Template
// arguments never contain `;` or top-level `{`, which is how we tell
// `vector<int>` apart from a stray comparison. Returns the index past the
// matching `>`, or `begin + 1` when this is not a template list.
std::size_t skip_template_args(const std::vector<Tok>& toks, std::size_t begin) {
  int depth = 0;
  for (std::size_t i = begin; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    else if (t == ">") {
      if (--depth == 0) return i + 1;
    } else if (t == ";" || t == "{" || t == ")") {
      break;  // not a template argument list after all
    } else if (t == "(") {
      i = skip_balanced(toks, i, "(", ")") - 1;
    }
  }
  return begin + 1;
}

bool is_punct(const Tok& t, const char* p) { return t.kind == Tok::kPunct && t.text == p; }
bool is_ident(const Tok& t, const char* s) { return t.kind == Tok::kIdent && t.text == s; }

std::size_t parse_class(ParseCtx& ctx, const std::vector<Tok>& toks, std::size_t i,
                        ClassRec* outer);

// Parse one statement at class scope starting at toks[i]; appends members /
// declaration flags to `rec`. Returns the index of the first token after the
// statement.
std::size_t parse_member_statement(ParseCtx& ctx, const std::vector<Tok>& toks, std::size_t i,
                                   ClassRec& rec) {
  const std::size_t n = toks.size();
  // Access specifier: `public:` etc.
  if (i + 1 < n && toks[i].kind == Tok::kIdent &&
      (toks[i].text == "public" || toks[i].text == "private" || toks[i].text == "protected") &&
      is_punct(toks[i + 1], ":")) {
    return i + 2;
  }
  if (is_ident(toks[i], "template")) {
    ++i;
    if (i < n && is_punct(toks[i], "<")) i = skip_template_args(toks, i);
    // fall through: the templated declaration itself is parsed below
  }
  // Nested type definition?
  if (i < n && (is_ident(toks[i], "class") || is_ident(toks[i], "struct") ||
                is_ident(toks[i], "union") || is_ident(toks[i], "enum"))) {
    const bool is_enum = is_ident(toks[i], "enum");
    std::size_t j = i;
    while (j < n && !is_punct(toks[j], "{") && !is_punct(toks[j], ";")) {
      if (is_punct(toks[j], "<")) j = skip_template_args(toks, j);
      else if (is_punct(toks[j], "(")) j = skip_balanced(toks, j, "(", ")");
      else ++j;
    }
    if (j < n && is_punct(toks[j], "{")) {
      if (is_enum) {
        j = skip_balanced(toks, j, "{", "}");
      } else {
        j = parse_class(ctx, toks, i, &rec);
      }
      // `struct T { ... } member_;` declares a member of the *outer* class.
      while (j < n && !is_punct(toks[j], ";")) {
        if (toks[j].kind == Tok::kIdent && j + 1 < n &&
            (is_punct(toks[j + 1], ";") || is_punct(toks[j + 1], ","))) {
          Member m{toks[j].text, toks[j].line, false};
          m.exempt = annotated(*ctx.file, m.line, "no-snapshot");
          rec.members.push_back(m);
        }
        ++j;
      }
      return j < n ? j + 1 : j;
    }
    // Forward declaration / elaborated type: fall through to the generic
    // statement scan below starting from the keyword.
  }

  // Generic statement: collect tokens (template args stripped, initializers
  // and function bodies skipped) until the terminating `;` / body.
  std::vector<Tok> stmt;
  bool saw_paren = false;
  std::string func_name;  // identifier immediately before the first top-level (
  std::set<std::string> body_idents;
  bool has_body = false;
  while (i < n) {
    const Tok& t = toks[i];
    if (is_punct(t, ";")) {
      ++i;
      break;
    }
    if (is_punct(t, "}")) break;  // malformed / end of class: don't consume
    if (is_punct(t, "<") && !stmt.empty() && stmt.back().kind == Tok::kIdent) {
      i = skip_template_args(toks, i);
      continue;
    }
    if (is_punct(t, "(")) {
      if (!saw_paren) {
        saw_paren = true;
        if (!stmt.empty() && stmt.back().kind == Tok::kIdent) func_name = stmt.back().text;
        // `operator==` etc.: the token before `(` is the operator symbol.
        for (std::size_t k = stmt.size(); k-- > 0;) {
          if (is_ident(stmt[k], "operator")) {
            func_name = "operator";
            break;
          }
          if (stmt[k].kind == Tok::kIdent) break;
        }
      }
      i = skip_balanced(toks, i, "(", ")");
      continue;
    }
    if (is_punct(t, "{")) {
      if (saw_paren) {
        // Inline member function body (possibly save_state/restore_state).
        i = skip_balanced(toks, i, "{", "}", &body_idents);
        has_body = true;
        if (i < n && is_punct(toks[i], ";")) ++i;
        break;
      }
      // Brace initializer on a data member.
      i = skip_balanced(toks, i, "{", "}");
      continue;
    }
    if (is_punct(t, "=")) {
      // Initializer (or `= default`): skip to `;` or to a top-level `,`
      // separating the next declarator (`u64 a_ = 0, b_ = 0;`).
      ++i;
      while (i < n && !is_punct(toks[i], ";") && !is_punct(toks[i], ",")) {
        if (is_punct(toks[i], "{")) i = skip_balanced(toks, i, "{", "}");
        else if (is_punct(toks[i], "(")) i = skip_balanced(toks, i, "(", ")");
        else if (is_punct(toks[i], "<") && toks[i - 1].kind == Tok::kIdent)
          i = skip_template_args(toks, i);
        else ++i;
      }
      continue;
    }
    stmt.push_back(t);
    ++i;
  }
  if (stmt.empty()) return i;

  static const std::set<std::string> skip_lead = {"using",  "typedef", "friend",
                                                 "static", "constexpr", "template"};
  if (skip_lead.count(stmt.front().text)) return i;

  if (saw_paren) {
    if (func_name == "save_state" || func_name == "restore_state") {
      const bool save = func_name == "save_state";
      (save ? rec.declares_save : rec.declares_restore) = true;
      if (has_body) {
        Bodies& b = (*ctx.bodies)[rec.name];
        (save ? b.has_save : b.has_restore) = true;
        auto& dst = save ? b.save_idents : b.restore_idents;
        dst.insert(body_idents.begin(), body_idents.end());
      }
    }
    return i;
  }

  // Data member(s): declared names are identifiers followed by a terminator.
  // A leading `const` exempts the member (it cannot be reassigned on
  // restore) — but only when no `*` follows, since `const X* p_` is a
  // mutable pointer to const.
  bool has_star = false;
  for (const Tok& s : stmt) {
    if (is_punct(s, "*")) has_star = true;
  }
  const bool is_const = !has_star && (is_ident(stmt.front(), "const") ||
                                      (stmt.size() > 1 && is_ident(stmt.front(), "mutable") &&
                                       is_ident(stmt[1], "const")));
  for (std::size_t k = 0; k < stmt.size(); ++k) {
    if (stmt[k].kind != Tok::kIdent) continue;
    const bool last = k + 1 == stmt.size();
    const bool terminated =
        last || is_punct(stmt[k + 1], ",") || is_punct(stmt[k + 1], ":") ||
        is_punct(stmt[k + 1], "[");
    if (!terminated || k == 0) continue;  // k==0: a lone type name, not a declarator
    if (!last && is_punct(stmt[k + 1], ":")) {
      // Bitfield only if a width follows; otherwise this is something odd.
      if (k + 2 >= stmt.size() || stmt[k + 2].kind != Tok::kNum) continue;
    }
    Member m{stmt[k].text, stmt[k].line, false};
    const bool is_ref = is_punct(stmt[k - 1], "&");
    m.exempt = is_ref || is_const || annotated(*ctx.file, m.line, "no-snapshot");
    rec.members.push_back(m);
    if (!last && is_punct(stmt[k + 1], "[")) {
      // Skip the array extent so its contents aren't mistaken for names.
      while (k + 1 < stmt.size() && !is_punct(stmt[k + 1], "]")) ++k;
    }
  }
  return i;
}

// Parse a class/struct/union definition whose `class` keyword is at toks[i].
// Returns the index just past the closing `}` (the caller handles any
// trailing declarators and the `;`).
std::size_t parse_class(ParseCtx& ctx, const std::vector<Tok>& toks, std::size_t i,
                        ClassRec* /*outer*/) {
  const std::size_t n = toks.size();
  ++i;  // class/struct/union
  std::string name;
  while (i < n && !is_punct(toks[i], "{") && !is_punct(toks[i], ";")) {
    if (toks[i].kind == Tok::kIdent && name.empty() && !is_ident(toks[i], "final") &&
        !is_ident(toks[i], "alignas")) {
      name = toks[i].text;
    }
    if (is_punct(toks[i], ":")) {
      // Base clause: everything up to `{` belongs to it.
      while (i < n && !is_punct(toks[i], "{")) {
        if (is_punct(toks[i], "<")) i = skip_template_args(toks, i);
        else ++i;
      }
      break;
    }
    if (is_punct(toks[i], ")") || is_punct(toks[i], ",") || is_punct(toks[i], "=") ||
        is_punct(toks[i], "&") || is_punct(toks[i], "*")) {
      return i;  // elaborated type reference (`struct X` in a parameter), not a definition
    }
    if (is_punct(toks[i], "<")) i = skip_template_args(toks, i);
    else if (is_punct(toks[i], "(")) i = skip_balanced(toks, i, "(", ")");
    else ++i;
  }
  if (i >= n || !is_punct(toks[i], "{")) return i;  // forward declaration
  ++i;  // {
  ClassRec rec;
  rec.name = name.empty() ? "<anonymous>" : name;
  rec.file = ctx.file;
  while (i < n && !is_punct(toks[i], "}")) {
    i = parse_member_statement(ctx, toks, i, rec);
  }
  if (i < n) ++i;  // }
  ctx.classes->push_back(std::move(rec));
  return i;
}

// Out-of-line `Qualified::ClassName::save_state(...) ... { body }` at toks[i]
// (i points at the save_state/restore_state identifier). Returns the index
// past the body on success, or `i + 1` when this is not a definition.
std::size_t try_out_of_line_body(ParseCtx& ctx, const std::vector<Tok>& toks, std::size_t i) {
  const std::size_t n = toks.size();
  if (i < 2 || !is_punct(toks[i - 1], "::") || toks[i - 2].kind != Tok::kIdent) return i + 1;
  const std::string cls = toks[i - 2].text;
  const bool save = toks[i].text == "save_state";
  std::size_t j = i + 1;
  if (j >= n || !is_punct(toks[j], "(")) return i + 1;
  j = skip_balanced(toks, j, "(", ")");
  while (j < n && toks[j].kind == Tok::kIdent &&
         (toks[j].text == "const" || toks[j].text == "noexcept" || toks[j].text == "override" ||
          toks[j].text == "final")) {
    ++j;
  }
  if (j >= n || !is_punct(toks[j], "{")) return i + 1;  // a declaration or a call
  std::set<std::string> idents;
  j = skip_balanced(toks, j, "{", "}", &idents);
  Bodies& b = (*ctx.bodies)[cls];
  (save ? b.has_save : b.has_restore) = true;
  auto& dst = save ? b.save_idents : b.restore_idents;
  dst.insert(idents.begin(), idents.end());
  return j;
}

// Top-level walk of one file: find class definitions and out-of-line
// save_state/restore_state bodies; everything else just has its braces
// balanced so nesting cannot derail the scan.
void parse_file(ParseCtx& ctx, const std::vector<Tok>& toks) {
  const std::size_t n = toks.size();
  std::size_t i = 0;
  while (i < n) {
    const Tok& t = toks[i];
    if (is_ident(t, "template")) {
      ++i;
      if (i < n && is_punct(toks[i], "<")) i = skip_template_args(toks, i);
      continue;
    }
    if (is_ident(t, "class") || is_ident(t, "struct") || is_ident(t, "union")) {
      // Definition or forward declaration — parse_class handles both.
      i = parse_class(ctx, toks, i, nullptr);
      continue;
    }
    if (is_ident(t, "enum")) {
      while (i < n && !is_punct(toks[i], "{") && !is_punct(toks[i], ";")) ++i;
      if (i < n && is_punct(toks[i], "{")) i = skip_balanced(toks, i, "{", "}");
      continue;
    }
    if (t.kind == Tok::kIdent && (t.text == "save_state" || t.text == "restore_state")) {
      i = try_out_of_line_body(ctx, toks, i);
      continue;
    }
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Per-file checks
// ---------------------------------------------------------------------------

void check_determinism(const SourceFile& f, const std::vector<Tok>& toks,
                       std::vector<Finding>& out) {
  // Names of variables/members declared with an unordered container type in
  // this file — range-for over any of them is flagged.
  std::set<std::string> unordered_names;
  static const std::set<std::string> unordered_types = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  const std::size_t n = toks.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (toks[i].kind != Tok::kIdent || !unordered_types.count(toks[i].text)) continue;
    std::size_t j = i + 1;
    if (j < n && is_punct(toks[j], "<")) j = skip_template_args(toks, j);
    while (j < n && (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
                     is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j < n && toks[j].kind == Tok::kIdent) unordered_names.insert(toks[j].text);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const Tok& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    const bool member_access = i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    const bool called = i + 1 < n && is_punct(toks[i + 1], "(");

    if (t.text == "random_device" || t.text == "system_clock") {
      if (!annotated(f, t.line, "allow-nondeterminism")) {
        out.push_back({f.path, t.line, "nondeterminism",
                       "`" + t.text + "` is nondeterministic; use safedm::Rng / steady_clock "
                       "(escape: `// lint: allow-nondeterminism(reason)`)"});
      }
      continue;
    }
    if ((t.text == "rand" || t.text == "srand" || t.text == "time" || t.text == "clock") &&
        called && !member_access) {
      if (!annotated(f, t.line, "allow-nondeterminism")) {
        out.push_back({f.path, t.line, "nondeterminism",
                       "`" + t.text + "()` is nondeterministic; results must be seed-derived "
                       "(escape: `// lint: allow-nondeterminism(reason)`)"});
      }
      continue;
    }
    if (t.text == "for" && called) {
      // Range-for: a top-level `:` inside the parens (classic for has `;`).
      std::size_t close = skip_balanced(toks, i + 1, "(", ")");
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_punct(toks[j], "(") || is_punct(toks[j], "[") || is_punct(toks[j], "{")) ++depth;
        else if (is_punct(toks[j], ")") || is_punct(toks[j], "]") || is_punct(toks[j], "}")) --depth;
        else if (depth == 1 && is_punct(toks[j], ";")) break;  // classic for
        else if (depth == 1 && is_punct(toks[j], ":") && toks[j].text != "::") {
          colon = j;
          break;
        }
      }
      if (colon != 0) {
        for (std::size_t j = colon + 1; j + 1 < close; ++j) {
          if (toks[j].kind == Tok::kIdent && unordered_names.count(toks[j].text)) {
            if (!annotated(f, toks[i].line, "allow-unordered-iteration")) {
              out.push_back(
                  {f.path, toks[i].line, "unordered-iteration",
                   "iteration over unordered container `" + toks[j].text +
                       "` has unspecified order "
                       "(escape: `// lint: allow-unordered-iteration(reason)`)"});
            }
            break;
          }
        }
      }
    }
  }
}

void check_header_hygiene(const SourceFile& f, const std::vector<Tok>& toks,
                          std::vector<Finding>& out) {
  bool guarded = false;
  std::string ifndef_macro;
  for (const std::string& raw : f.raw_lines) {
    std::size_t b = raw.find_first_not_of(" \t");
    if (b == std::string::npos || raw[b] != '#') continue;
    std::istringstream is(raw.substr(b + 1));
    std::string directive, arg;
    is >> directive >> arg;
    if (directive == "pragma" && arg == "once") {
      guarded = true;
      break;
    }
    if (directive == "ifndef" && ifndef_macro.empty()) ifndef_macro = arg;
    if (directive == "define" && !ifndef_macro.empty() && arg == ifndef_macro) {
      guarded = true;
      break;
    }
  }
  if (!guarded) {
    out.push_back({f.path, 1, "header-guard",
                   "header lacks `#pragma once` (or an #ifndef/#define include guard)"});
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i], "using") && is_ident(toks[i + 1], "namespace") &&
        !annotated(f, toks[i].line, "allow-using-namespace")) {
      out.push_back({f.path, toks[i].line, "using-namespace-header",
                     "`using namespace` in a header leaks into every includer "
                     "(escape: `// lint: allow-using-namespace(reason)`)"});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

bool load_source(const std::string& disk_path, const std::string& report_path, bool determinism,
                 SourceFile& out) {
  std::ifstream in(disk_path, std::ios::binary);
  if (!in) return false;
  out.path = report_path;
  out.determinism = determinism;
  const auto dot = report_path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : report_path.substr(dot);
  out.is_header = ext == ".hpp" || ext == ".h" || ext == ".hh";
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    out.raw_lines.push_back(line);
  }
  // Re-point bad-annotation findings at this file's report path.
  out.annotations.clear();
  out.bad_annotations.clear();
  out.code = blank_code(out.raw_lines, out);
  return true;
}

std::vector<Finding> run_checks(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  std::vector<ClassRec> classes;
  std::map<std::string, Bodies> bodies;

  for (const SourceFile& f : files) {
    const std::vector<Tok> toks = tokenize(f.code);
    ParseCtx ctx{&f, &classes, &bodies};
    parse_file(ctx, toks);
    if (f.determinism) check_determinism(f, toks, findings);
    if (f.is_header) check_header_hygiene(f, toks, findings);
    findings.insert(findings.end(), f.bad_annotations.begin(), f.bad_annotations.end());
  }

  for (const ClassRec& rec : classes) {
    if (!rec.declares_save || !rec.declares_restore) continue;
    auto it = bodies.find(rec.name);
    if (it == bodies.end() || !it->second.has_save || !it->second.has_restore) {
      continue;  // bodies live outside the scanned file set — nothing to check
    }
    std::set<std::string> reported;  // one finding per field even if declared twice
    for (const Member& m : rec.members) {
      if (m.exempt || !reported.insert(m.name).second) continue;
      const bool in_save = it->second.save_idents.count(m.name) != 0;
      const bool in_restore = it->second.restore_idents.count(m.name) != 0;
      if (in_save && in_restore) continue;
      std::string where = !in_save && !in_restore ? "save_state or restore_state"
                          : !in_save              ? "save_state"
                                                  : "restore_state";
      findings.push_back({rec.file->path, m.line, "snapshot-completeness",
                          "class `" + rec.name + "`: field `" + m.name +
                              "` is not referenced in " + where +
                              " (escape: `// lint: no-snapshot(reason)`)"});
    }
  }

  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end()), findings.end());
  return findings;
}

std::string format(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": [" << f.check << "] " << f.message;
  return os.str();
}

std::vector<std::string> compile_commands_files(const std::string& json_path) {
  std::ifstream in(json_path, std::ios::binary);
  std::vector<std::string> out;
  if (!in) return out;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();

  // Scan for "key" : "value" string pairs, tracking object boundaries.
  // compile_commands.json is a flat array of objects, so this is enough.
  std::string dir, file;
  auto read_string = [&s](std::size_t& i) {
    std::string v;
    ++i;  // opening quote
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        v += s[i] == 'n' ? '\n' : s[i] == 't' ? '\t' : s[i];
      } else {
        v += s[i];
      }
      ++i;
    }
    ++i;  // closing quote
    return v;
  };
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    if (c == '}') {
      if (!file.empty()) {
        const bool absolute = file.front() == '/';
        out.push_back(absolute || dir.empty() ? file : dir + "/" + file);
      }
      dir.clear();
      file.clear();
      ++i;
    } else if (c == '"') {
      std::string key = read_string(i);
      while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == ':')) {
        if (s[i] == ':') {
          while (++i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n')) {
          }
          if (i < s.size() && s[i] == '"') {
            std::string value = read_string(i);
            if (key == "directory") dir = value;
            if (key == "file") file = value;
          }
          break;
        }
        ++i;
      }
    } else {
      ++i;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace safedm::lint
