#include "symbols.hpp"

#include <cctype>

namespace safedm::lint {

namespace {
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
}  // namespace

bool is_punct(const Tok& t, const char* p) { return t.kind == Tok::kPunct && t.text == p; }
bool is_ident(const Tok& t, const char* s) { return t.kind == Tok::kIdent && t.text == s; }

std::vector<Tok> tokenize(const std::string& code) {
  std::vector<Tok> toks;
  int line = 1;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      // Preprocessor: drop the whole directive, honoring `\`-continuations
      // so multi-line macro bodies stay out of the token stream.
      while (i < code.size()) {
        if (code[i] == '\n') {
          if (i > 0 && code[i - 1] == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;  // the final newline is counted by the main loop
        }
        ++i;
      }
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t b = i;
      while (i < code.size() && ident_char(code[i])) ++i;
      toks.push_back({Tok::kIdent, code.substr(b, i - b), line, b});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t b = i;
      while (i < code.size() && (ident_char(code[i]) || code[i] == '.')) ++i;
      toks.push_back({Tok::kNum, code.substr(b, i - b), line, b});
      continue;
    }
    if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      toks.push_back({Tok::kPunct, "::", line, i});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      toks.push_back({Tok::kPunct, "->", line, i});
      i += 2;
      continue;
    }
    toks.push_back({Tok::kPunct, std::string(1, c), line, i});
    ++i;
  }
  return toks;
}

std::size_t skip_balanced(const std::vector<Tok>& toks, std::size_t i, const char* open,
                          const char* close, std::set<std::string>* idents) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind == Tok::kPunct && toks[i].text == open) {
      ++depth;
    } else if (toks[i].kind == Tok::kPunct && toks[i].text == close) {
      if (--depth == 0) return i + 1;
    } else if (idents && toks[i].kind == Tok::kIdent) {
      idents->insert(toks[i].text);
    }
  }
  return i;
}

std::size_t skip_template_args(const std::vector<Tok>& toks, std::size_t begin) {
  // Template arguments never contain `;` or a top-level `{`, which is how
  // we tell `vector<int>` apart from a stray comparison.
  int depth = 0;
  for (std::size_t i = begin; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    else if (t == ">") {
      if (--depth == 0) return i + 1;
    } else if (t == ";" || t == "{" || t == ")") {
      break;  // not a template argument list after all
    } else if (t == "(") {
      i = skip_balanced(toks, i, "(", ")") - 1;
    }
  }
  return begin + 1;
}

std::string path_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t base = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || dot < base) return path.substr(base);
  return path.substr(base, dot - base);
}

namespace {

struct ParseCtx {
  const SourceFile* file;
  FileSymbols* sym;
};

// The first begin_section("TAG", version) call inside a body names the
// class's own section; capture the fourcc (from the blanked string literal,
// via its byte offset) and the version argument token.
void scan_section(const SourceFile& f, const std::vector<Tok>& toks, std::size_t b, std::size_t e,
                  BodyInfo& info) {
  for (std::size_t j = b; j + 2 < e; ++j) {
    if (!is_ident(toks[j], "begin_section") || !is_punct(toks[j + 1], "(")) continue;
    std::size_t k = j + 2;
    if (k < e && is_punct(toks[k], "\"")) {
      auto it = f.string_literals.find(toks[k].pos);
      if (it != f.string_literals.end()) info.section_tag = it->second;
    }
    while (k < e && !is_punct(toks[k], ",") && !is_punct(toks[k], ")")) ++k;
    if (k < e && is_punct(toks[k], ",") && k + 1 < e &&
        (toks[k + 1].kind == Tok::kNum || toks[k + 1].kind == Tok::kIdent)) {
      info.version_token = toks[k + 1].text;
    }
    return;
  }
}

void record_body(ParseCtx& ctx, const std::vector<Tok>& toks, const std::string& cls, bool save,
                 std::size_t body_begin, std::size_t body_end,
                 const std::set<std::string>& idents) {
  Bodies& b = ctx.sym->bodies[cls];
  BodyInfo& info = save ? b.save : b.restore;
  info.present = true;
  info.idents.insert(idents.begin(), idents.end());
  if (info.file.empty()) {
    info.file = ctx.file->path;
    info.line = toks[body_begin].line;
  }
  if (save && info.section_tag.empty()) {
    scan_section(*ctx.file, toks, body_begin, body_end, info);
  }
}

// Attach annotation state to a freshly parsed member and register any
// guarded-by declaration it carries.
void finish_member(ParseCtx& ctx, Member& m) {
  m.annot_line = annotation_line(*ctx.file, m.line, "no-snapshot");
  m.no_snapshot = m.annot_line != 0;
  const int gl = annotation_line(*ctx.file, m.line, "guarded-by");
  if (gl != 0) {
    const std::string* mu = annotation_reason(*ctx.file, m.line, "guarded-by");
    ctx.sym->guarded.push_back({m.name, mu ? *mu : "", ctx.file->path, ctx.file->subsystem,
                                path_stem(ctx.file->path), m.line, gl});
  }
}

std::size_t parse_class(ParseCtx& ctx, const std::vector<Tok>& toks, std::size_t i);

// Parse one statement at class scope starting at toks[i]; appends members /
// declaration flags to `rec`. Returns the index of the first token after the
// statement.
std::size_t parse_member_statement(ParseCtx& ctx, const std::vector<Tok>& toks, std::size_t i,
                                   ClassRec& rec) {
  const std::size_t n = toks.size();
  // Access specifier: `public:` etc.
  if (i + 1 < n && toks[i].kind == Tok::kIdent &&
      (toks[i].text == "public" || toks[i].text == "private" || toks[i].text == "protected") &&
      is_punct(toks[i + 1], ":")) {
    return i + 2;
  }
  if (is_ident(toks[i], "template")) {
    ++i;
    if (i < n && is_punct(toks[i], "<")) i = skip_template_args(toks, i);
    // fall through: the templated declaration itself is parsed below
  }
  // Nested type definition?
  if (i < n && (is_ident(toks[i], "class") || is_ident(toks[i], "struct") ||
                is_ident(toks[i], "union") || is_ident(toks[i], "enum"))) {
    const bool is_enum = is_ident(toks[i], "enum");
    std::size_t j = i;
    while (j < n && !is_punct(toks[j], "{") && !is_punct(toks[j], ";")) {
      if (is_punct(toks[j], "<")) j = skip_template_args(toks, j);
      else if (is_punct(toks[j], "(")) j = skip_balanced(toks, j, "(", ")");
      else ++j;
    }
    if (j < n && is_punct(toks[j], "{")) {
      if (is_enum) {
        j = skip_balanced(toks, j, "{", "}");
      } else {
        j = parse_class(ctx, toks, i);
      }
      // `struct T { ... } member_;` declares a member of the *outer* class.
      while (j < n && !is_punct(toks[j], ";")) {
        if (toks[j].kind == Tok::kIdent && j + 1 < n &&
            (is_punct(toks[j + 1], ";") || is_punct(toks[j + 1], ","))) {
          Member m;
          m.name = toks[j].text;
          m.line = toks[j].line;
          finish_member(ctx, m);
          rec.members.push_back(m);
        }
        ++j;
      }
      return j < n ? j + 1 : j;
    }
    // Forward declaration / elaborated type: fall through to the generic
    // statement scan below starting from the keyword.
  }

  // Generic statement: collect tokens (template args stripped, initializers
  // and function bodies skipped) until the terminating `;` / body.
  std::vector<Tok> stmt;
  bool saw_paren = false;
  std::string func_name;  // identifier immediately before the first top-level (
  std::set<std::string> body_idents;
  bool has_body = false;
  std::size_t body_begin = 0, body_end = 0;
  while (i < n) {
    const Tok& t = toks[i];
    if (is_punct(t, ";")) {
      ++i;
      break;
    }
    if (is_punct(t, "}")) break;  // malformed / end of class: don't consume
    if (is_punct(t, "<") && !stmt.empty() && stmt.back().kind == Tok::kIdent) {
      i = skip_template_args(toks, i);
      continue;
    }
    if (is_punct(t, "(")) {
      if (!saw_paren) {
        saw_paren = true;
        if (!stmt.empty() && stmt.back().kind == Tok::kIdent) func_name = stmt.back().text;
        // `operator==` etc.: the token before `(` is the operator symbol.
        for (std::size_t k = stmt.size(); k-- > 0;) {
          if (is_ident(stmt[k], "operator")) {
            func_name = "operator";
            break;
          }
          if (stmt[k].kind == Tok::kIdent) break;
        }
      }
      i = skip_balanced(toks, i, "(", ")");
      continue;
    }
    if (is_punct(t, "{")) {
      if (saw_paren) {
        // Inline member function body (possibly save_state/restore_state).
        body_begin = i;
        i = skip_balanced(toks, i, "{", "}", &body_idents);
        body_end = i;
        has_body = true;
        if (i < n && is_punct(toks[i], ";")) ++i;
        break;
      }
      // Brace initializer on a data member.
      i = skip_balanced(toks, i, "{", "}");
      continue;
    }
    if (is_punct(t, "=")) {
      // Initializer (or `= default`): skip to `;` or to a top-level `,`
      // separating the next declarator (`u64 a_ = 0, b_ = 0;`).
      ++i;
      while (i < n && !is_punct(toks[i], ";") && !is_punct(toks[i], ",")) {
        if (is_punct(toks[i], "{")) i = skip_balanced(toks, i, "{", "}");
        else if (is_punct(toks[i], "(")) i = skip_balanced(toks, i, "(", ")");
        else if (is_punct(toks[i], "<") && toks[i - 1].kind == Tok::kIdent)
          i = skip_template_args(toks, i);
        else ++i;
      }
      continue;
    }
    stmt.push_back(t);
    ++i;
  }
  if (stmt.empty()) return i;

  static const std::set<std::string> skip_lead = {"using",  "typedef",   "friend",
                                                  "static", "constexpr", "template"};
  if (skip_lead.count(stmt.front().text)) return i;

  if (saw_paren) {
    if (func_name == "save_state" || func_name == "restore_state") {
      const bool save = func_name == "save_state";
      (save ? rec.declares_save : rec.declares_restore) = true;
      if (has_body) record_body(ctx, toks, rec.name, save, body_begin, body_end, body_idents);
    }
    return i;
  }

  // Data member(s): declared names are identifiers followed by a terminator.
  // A leading `const` exempts the member (it cannot be reassigned on
  // restore) — but only when no `*` follows, since `const X* p_` is a
  // mutable pointer to const.
  bool has_star = false;
  for (const Tok& s : stmt) {
    if (is_punct(s, "*")) has_star = true;
  }
  const bool is_const = !has_star && (is_ident(stmt.front(), "const") ||
                                      (stmt.size() > 1 && is_ident(stmt.front(), "mutable") &&
                                       is_ident(stmt[1], "const")));
  for (std::size_t k = 0; k < stmt.size(); ++k) {
    if (stmt[k].kind != Tok::kIdent) continue;
    const bool last = k + 1 == stmt.size();
    const bool terminated =
        last || is_punct(stmt[k + 1], ",") || is_punct(stmt[k + 1], ":") ||
        is_punct(stmt[k + 1], "[");
    if (!terminated || k == 0) continue;  // k==0: a lone type name, not a declarator
    if (!last && is_punct(stmt[k + 1], ":")) {
      // Bitfield only if a width follows; otherwise this is something odd.
      if (k + 2 >= stmt.size() || stmt[k + 2].kind != Tok::kNum) continue;
    }
    Member m;
    m.name = stmt[k].text;
    m.line = stmt[k].line;
    const bool is_ref = is_punct(stmt[k - 1], "&");
    m.auto_exempt = is_ref || is_const;
    finish_member(ctx, m);
    rec.members.push_back(m);
    if (!last && is_punct(stmt[k + 1], "[")) {
      // Skip the array extent so its contents aren't mistaken for names.
      while (k + 1 < stmt.size() && !is_punct(stmt[k + 1], "]")) ++k;
    }
  }
  return i;
}

// Parse a class/struct/union definition whose `class` keyword is at toks[i].
// Returns the index just past the closing `}` (the caller handles any
// trailing declarators and the `;`).
std::size_t parse_class(ParseCtx& ctx, const std::vector<Tok>& toks, std::size_t i) {
  const std::size_t n = toks.size();
  ++i;  // class/struct/union
  std::string name;
  while (i < n && !is_punct(toks[i], "{") && !is_punct(toks[i], ";")) {
    if (toks[i].kind == Tok::kIdent && name.empty() && !is_ident(toks[i], "final") &&
        !is_ident(toks[i], "alignas")) {
      name = toks[i].text;
    }
    if (is_punct(toks[i], ":")) {
      // Base clause: everything up to `{` belongs to it.
      while (i < n && !is_punct(toks[i], "{")) {
        if (is_punct(toks[i], "<")) i = skip_template_args(toks, i);
        else ++i;
      }
      break;
    }
    if (is_punct(toks[i], ")") || is_punct(toks[i], ",") || is_punct(toks[i], "=") ||
        is_punct(toks[i], "&") || is_punct(toks[i], "*")) {
      return i;  // elaborated type reference (`struct X` in a parameter), not a definition
    }
    if (is_punct(toks[i], "<")) i = skip_template_args(toks, i);
    else if (is_punct(toks[i], "(")) i = skip_balanced(toks, i, "(", ")");
    else ++i;
  }
  if (i >= n || !is_punct(toks[i], "{")) return i;  // forward declaration
  ++i;  // {
  ClassRec rec;
  rec.name = name.empty() ? "<anonymous>" : name;
  rec.file = ctx.file;
  while (i < n && !is_punct(toks[i], "}")) {
    i = parse_member_statement(ctx, toks, i, rec);
  }
  if (i < n) ++i;  // }
  ctx.sym->classes.push_back(std::move(rec));
  return i;
}

// Out-of-line `Qualified::ClassName::save_state(...) ... { body }` at toks[i]
// (i points at the save_state/restore_state identifier). Returns the index
// past the body on success, or `i + 1` when this is not a definition.
std::size_t try_out_of_line_body(ParseCtx& ctx, const std::vector<Tok>& toks, std::size_t i) {
  const std::size_t n = toks.size();
  if (i < 2 || !is_punct(toks[i - 1], "::") || toks[i - 2].kind != Tok::kIdent) return i + 1;
  const std::string cls = toks[i - 2].text;
  const bool save = toks[i].text == "save_state";
  std::size_t j = i + 1;
  if (j >= n || !is_punct(toks[j], "(")) return i + 1;
  j = skip_balanced(toks, j, "(", ")");
  while (j < n && toks[j].kind == Tok::kIdent &&
         (toks[j].text == "const" || toks[j].text == "noexcept" || toks[j].text == "override" ||
          toks[j].text == "final")) {
    ++j;
  }
  if (j >= n || !is_punct(toks[j], "{")) return i + 1;  // a declaration or a call
  std::set<std::string> idents;
  const std::size_t body_begin = j;
  j = skip_balanced(toks, j, "{", "}", &idents);
  record_body(ctx, toks, cls, save, body_begin, j, idents);
  return j;
}

// Top-level walk of one file: find class definitions and out-of-line
// save_state/restore_state bodies; everything else just has its braces
// balanced so nesting cannot derail the scan.
void parse_file(ParseCtx& ctx, const std::vector<Tok>& toks) {
  const std::size_t n = toks.size();
  std::size_t i = 0;
  while (i < n) {
    const Tok& t = toks[i];
    if (is_ident(t, "template")) {
      ++i;
      if (i < n && is_punct(toks[i], "<")) i = skip_template_args(toks, i);
      continue;
    }
    if (is_ident(t, "class") || is_ident(t, "struct") || is_ident(t, "union")) {
      // Definition or forward declaration — parse_class handles both.
      i = parse_class(ctx, toks, i);
      continue;
    }
    if (is_ident(t, "enum")) {
      while (i < n && !is_punct(toks[i], "{") && !is_punct(toks[i], ";")) ++i;
      if (i < n && is_punct(toks[i], "{")) i = skip_balanced(toks, i, "{", "}");
      continue;
    }
    if (t.kind == Tok::kIdent && (t.text == "save_state" || t.text == "restore_state")) {
      i = try_out_of_line_body(ctx, toks, i);
      continue;
    }
    ++i;
  }
}

// `constexpr <type> name = <integer literal>;` — resolves symbolic section
// versions like kShardLogVersion in the snapshot manifest.
void scan_constants(const std::vector<Tok>& toks, std::map<std::string, std::string>& out) {
  const std::size_t n = toks.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_ident(toks[i], "constexpr")) continue;
    for (std::size_t j = i + 1; j < n && j < i + 16; ++j) {
      if (is_punct(toks[j], ";") || is_punct(toks[j], "{") || is_punct(toks[j], "(")) break;
      if (is_punct(toks[j], "=") && toks[j - 1].kind == Tok::kIdent && j + 2 < n &&
          toks[j + 1].kind == Tok::kNum && is_punct(toks[j + 2], ";")) {
        out[toks[j - 1].text] = toks[j + 1].text;
        break;
      }
    }
  }
}

}  // namespace

FileSymbols analyze_file(const SourceFile& f) {
  FileSymbols sym;
  sym.toks = tokenize(f.code);
  ParseCtx ctx{&f, &sym};
  parse_file(ctx, sym.toks);
  scan_constants(sym.toks, sym.constants);
  return sym;
}

}  // namespace safedm::lint
