#include "checks_v2.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace safedm::lint {

namespace {

bool is_lock_type(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" || s == "shared_lock";
}

// `std::lock_guard<std::mutex> lock(state->mutex);` — the mutex a guard
// argument names is its last identifier (member access chains collapse to
// the member actually locked).
void collect_lock_args(const std::vector<Tok>& toks, std::size_t open, std::size_t close,
                       std::vector<std::string>& out) {
  int depth = 0;
  std::string last_ident;
  for (std::size_t i = open; i < close; ++i) {
    const Tok& t = toks[i];
    if (t.kind == Tok::kPunct &&
        (t.text == "(" || t.text == "[" || t.text == "{" || t.text == "<")) {
      ++depth;
    } else if (t.kind == Tok::kPunct &&
               (t.text == ")" || t.text == "]" || t.text == "}" || t.text == ">")) {
      --depth;
    } else if (t.kind == Tok::kPunct && t.text == "," && depth == 0) {
      if (!last_ident.empty()) out.push_back(last_ident);
      last_ident.clear();
    } else if (t.kind == Tok::kIdent) {
      last_ident = t.text;
    }
  }
  if (!last_ident.empty()) out.push_back(last_ident);
}

}  // namespace

void check_lock_discipline(const SourceFile& f, const std::vector<Tok>& toks,
                           const std::vector<GuardedMember>& applicable, AnnotationUse& used,
                           std::vector<Finding>& out) {
  if (applicable.empty()) return;
  std::map<std::string, const GuardedMember*> by_name;
  for (const GuardedMember& g : applicable) by_name[g.name] = &g;

  struct Scope {
    std::vector<std::string> locks;
  };
  std::vector<Scope> scopes(1);
  const std::size_t n = toks.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Tok& t = toks[i];
    if (is_punct(t, "{")) {
      scopes.push_back({});
      continue;
    }
    if (is_punct(t, "}")) {
      if (scopes.size() > 1) scopes.pop_back();
      continue;
    }
    if (t.kind != Tok::kIdent) continue;
    if (is_lock_type(t.text)) {
      // lock_guard<...> name(args) / scoped_lock name{args} / unique_lock
      // name(args, std::defer_lock) — register every mutex argument in the
      // current scope. (A deferred lock still counts: name-based matching
      // is the documented 90% solution.)
      std::size_t j = i + 1;
      if (j < n && is_punct(toks[j], "<")) j = skip_template_args(toks, j);
      if (j < n && toks[j].kind == Tok::kIdent) ++j;  // the guard variable
      if (j < n && (is_punct(toks[j], "(") || is_punct(toks[j], "{"))) {
        const char* open = toks[j].text == "(" ? "(" : "{";
        const char* close = toks[j].text == "(" ? ")" : "}";
        const std::size_t end = skip_balanced(toks, j, open, close);
        collect_lock_args(toks, j + 1, end - 1, scopes.back().locks);
        i = end - 1;
      }
      continue;
    }
    auto it = by_name.find(t.text);
    if (it == by_name.end()) continue;
    const GuardedMember& g = *it->second;
    // The declaration site itself (the annotated line) is not an access.
    if (f.path == g.file && (t.line == g.annot_line || t.line == g.annot_line + 1)) continue;
    bool locked = false;
    for (const Scope& s : scopes) {
      if (std::find(s.locks.begin(), s.locks.end(), g.mutex) != s.locks.end()) {
        locked = true;
        break;
      }
    }
    if (locked) continue;
    const int al = annotation_line(f, t.line, "allow-unguarded");
    if (al != 0) {
      used.mark(f, al, "allow-unguarded");
      continue;
    }
    out.push_back({f.path, t.line, "lock-discipline",
                   "`" + g.name + "` is guarded by `" + g.mutex +
                       "` (declared at " + g.file + ":" + std::to_string(g.line) +
                       ") but accessed without a lock_guard/unique_lock/scoped_lock on it "
                       "(escape: `// lint: allow-unguarded(reason)`)"});
  }
}

std::vector<ManifestEntry> collect_manifest(
    const std::vector<ClassRec>& classes, const std::map<std::string, Bodies>& bodies,
    const std::map<std::string, std::string>& constants) {
  std::vector<ManifestEntry> out;
  std::set<std::string> seen;
  for (const ClassRec& rec : classes) {
    if (!rec.declares_save || !rec.declares_restore) continue;
    auto it = bodies.find(rec.name);
    if (it == bodies.end() || !it->second.save.present || !it->second.restore.present) continue;
    const BodyInfo& save = it->second.save;
    if (save.section_tag.empty()) continue;  // serializes into a parent's section
    if (!seen.insert(rec.name).second) continue;
    ManifestEntry e;
    e.cls = rec.name;
    e.tag = save.section_tag;
    e.file = save.file;
    e.line = save.line;
    // Resolve a symbolic version (kShardLogVersion) through the constexpr
    // constant table; normalize numeric literals to decimal.
    std::string v = save.version_token;
    auto cit = constants.find(v);
    if (cit != constants.end()) v = cit->second;
    if (!v.empty()) {
      char* end = nullptr;
      const unsigned long long num = std::strtoull(v.c_str(), &end, 0);
      if (end && *end == '\0') v = std::to_string(num);
    }
    e.version = v.empty() ? "?" : v;
    std::set<std::string> members;
    for (const Member& m : rec.members) {
      if (save.idents.count(m.name)) members.insert(m.name);
    }
    e.members.assign(members.begin(), members.end());
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) { return a.cls < b.cls; });
  return out;
}

std::string render_manifest(const std::vector<ManifestEntry>& entries) {
  std::ostringstream os;
  os << "# safedm-lint snapshot-format manifest — one row per save_state class that\n"
        "# opens a tagged section:  <class> <fourcc> v<version> <member,member,...>\n"
        "# Changing a row's member set without bumping its version is a\n"
        "# [snapshot-format-drift] finding. Regenerate with:\n"
        "#   safedm-lint --root . --compile-commands build/compile_commands.json "
        "--update-manifest\n";
  for (const ManifestEntry& e : entries) {
    os << e.cls << " " << e.tag << " v" << e.version << " ";
    for (std::size_t i = 0; i < e.members.size(); ++i) {
      if (i) os << ",";
      os << e.members[i];
    }
    if (e.members.empty()) os << "-";
    os << "\n";
  }
  return os.str();
}

void check_manifest_drift(const std::vector<ManifestEntry>& entries, const std::string& path,
                          const std::string& display, std::vector<Finding>& out) {
  struct Row {
    std::string tag, version, members;
    int line = 0;
  };
  std::map<std::string, Row> want;
  std::ifstream in(path);
  if (!in) {
    out.push_back({display, 1, "snapshot-format-drift",
                   "snapshot manifest is missing; regenerate with `safedm-lint ... "
                   "--update-manifest`"});
    return;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string cls, tag, version, members;
    is >> cls >> tag >> version >> members;
    if (cls.empty() || tag.empty() || version.size() < 2 || version[0] != 'v') {
      out.push_back({display, lineno, "snapshot-format-drift",
                     "malformed manifest row (want `<class> <fourcc> v<version> "
                     "<member,...>`); regenerate with --update-manifest"});
      continue;
    }
    want[cls] = {tag, version.substr(1), members == "-" ? "" : members, lineno};
  }

  std::set<std::string> matched;
  for (const ManifestEntry& e : entries) {
    std::string members;
    for (std::size_t i = 0; i < e.members.size(); ++i) {
      if (i) members += ",";
      members += e.members[i];
    }
    auto it = want.find(e.cls);
    if (it == want.end()) {
      out.push_back({e.file, e.line, "snapshot-format-drift",
                     "class `" + e.cls + "` (section " + e.tag + " v" + e.version +
                         ") is not in the snapshot manifest; run `safedm-lint ... "
                         "--update-manifest` and review the new row"});
      continue;
    }
    matched.insert(e.cls);
    const Row& w = it->second;
    if (w.tag != e.tag || w.version != e.version) {
      out.push_back({e.file, e.line, "snapshot-format-drift",
                     "class `" + e.cls + "`: section changed (" + w.tag + " v" + w.version +
                         " -> " + e.tag + " v" + e.version +
                         "); manifest is stale — run `safedm-lint ... --update-manifest`"});
      continue;
    }
    if (w.members != members) {
      // The headline case: same fourcc+version, different serialized set.
      std::set<std::string> have(e.members.begin(), e.members.end());
      std::set<std::string> old;
      std::istringstream ms(w.members);
      std::string m;
      while (std::getline(ms, m, ',')) {
        if (!m.empty()) old.insert(m);
      }
      std::string delta;
      for (const std::string& x : have) {
        if (!old.count(x)) delta += " +" + x;
      }
      for (const std::string& x : old) {
        if (!have.count(x)) delta += " -" + x;
      }
      out.push_back({e.file, e.line, "snapshot-format-drift",
                     "class `" + e.cls + "`: serialized member set changed (" +
                         (delta.empty() ? " reordered" : delta) + " ) but section " + e.tag +
                         " is still v" + e.version +
                         " — bump the version, then run `safedm-lint ... --update-manifest`"});
    }
  }
  for (const auto& [cls, w] : want) {
    if (matched.count(cls)) continue;
    out.push_back({display, w.line, "snapshot-format-drift",
                   "manifest row for `" + cls +
                       "` matches no save_state class in the scanned sources; run "
                       "`safedm-lint ... --update-manifest`"});
  }
}

void check_stale_annotations(const std::vector<SourceFile>& files, const AnnotationUse& used,
                             const std::set<std::pair<std::string, int>>& claimed_no_snapshot,
                             const std::vector<GuardedMember>& guarded,
                             std::vector<Finding>& out) {
  std::set<std::pair<std::string, int>> guard_decls;
  for (const GuardedMember& g : guarded) guard_decls.insert({g.file, g.annot_line});
  for (const SourceFile& f : files) {
    for (const auto& [line, kinds] : f.annotations) {
      for (const auto& [kind, reason] : kinds) {
        (void)reason;
        if (kind == "guarded-by") {
          // Declarative, not an escape — but it must attach to a member.
          if (!guard_decls.count({f.path, line})) {
            out.push_back({f.path, line, "stale-annotation",
                           "`guarded-by` attaches to no member declaration (it goes on, or "
                           "directly above, the guarded member)"});
          }
          continue;
        }
        if (kind == "no-snapshot" && claimed_no_snapshot.count({f.path, line}) &&
            !used.is_used(f.path, line, kind)) {
          out.push_back({f.path, line, "stale-annotation",
                         "stale `no-snapshot`: the member is referenced in both save_state "
                         "and restore_state (or is exempt anyway) — the check would not "
                         "fire; remove the annotation"});
          continue;
        }
        if (used.is_used(f.path, line, kind)) continue;
        if (kind == "no-snapshot" && !claimed_no_snapshot.count({f.path, line})) {
          out.push_back({f.path, line, "stale-annotation",
                         "`no-snapshot` attaches to no member declaration of a class with "
                         "save_state/restore_state — the check would not fire; remove it"});
          continue;
        }
        if (kind == "no-snapshot") continue;  // claimed and used
        out.push_back({f.path, line, "stale-annotation",
                       "stale `" + kind +
                           "`: the check it escapes would not fire here; remove the "
                           "annotation"});
      }
    }
  }
}

}  // namespace safedm::lint
