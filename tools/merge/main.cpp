// safedm-merge — fold a complete set of shard logs into the canonical
// campaign report.
//
// Usage: safedm-merge [--manifest=PATH] [--out=PATH] LOG...
//   --manifest=PATH  validate the fleet against a manifest written by
//                    bench_faultsim_campaign --write-manifest
//   --out=PATH       report path (default BENCH_faultsim.json)
//
// The output is byte-identical to the single-process campaign's JSON for
// any shard count and any log order; anything short of a complete,
// consistent fleet fails with a one-line `path:record:` diagnostic and
// exit code 1 (usage errors exit 2).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "safedm/faultsim/shard.hpp"

namespace {

constexpr char kUsage[] = "usage: safedm-merge [--manifest=PATH] [--out=PATH] LOG...\n";

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string out_path = "BENCH_faultsim.json";
  std::vector<std::string> logs;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--manifest=", 11) == 0) {
      manifest_path = arg + 11;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "unknown option: %s\n%s", arg, kUsage);
      return 2;
    } else {
      logs.push_back(arg);
    }
  }
  if (logs.empty()) {
    std::fprintf(stderr, "no shard logs given\n%s", kUsage);
    return 2;
  }

  safedm::faultsim::EngineReport report;
  try {
    report = safedm::faultsim::merge_shard_logs(logs, manifest_path);
  } catch (const safedm::faultsim::MergeError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  safedm::faultsim::write_report_json(report, out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "write to %s failed\n", out_path.c_str());
    return 2;
  }
  std::printf("merged %zu shard logs (%llu injections) -> %s\n", logs.size(),
              static_cast<unsigned long long>(report.injections), out_path.c_str());
  return 0;
}
