// Diverse-software redundancy (paper Section III-B4): SafeDM places no
// constraints on what each core runs — unlike staggering-enforcement
// schemes it does not require identical instruction streams. Here the two
// cores compute the same function (sort the same input) with *different
// algorithms*, and SafeDM confirms the pair stayed diverse while a result
// cross-check confirms functional agreement.
#include <cstdio>

#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;

int main() {
  soc::MpSoc soc{soc::SocConfig{}};
  monitor::SafeDmConfig config;
  config.start_enabled = true;
  monitor::SafeDm safedm(config);
  soc.add_observer(&safedm);

  // Same specification, two implementations: bubble sort vs insertion
  // sort over identical input data (both write an order-insensitive
  // checksum of the sorted array).
  const assembler::Program impl_a = workloads::build("bsort", 1);
  const assembler::Program impl_b = workloads::build("bsort", 1);
  // A genuinely different algorithm for core 1:
  const assembler::Program impl_b2 = workloads::build("insertsort", 1);

  std::printf("case 1: identical implementations (bsort || bsort)\n");
  soc.load_redundant(impl_a);
  safedm.reset();
  soc.run(50'000'000);
  safedm.finalize();
  std::printf("  no-div cycles: %llu of %llu monitored\n",
              static_cast<unsigned long long>(safedm.counters().nodiv_cycles),
              static_cast<unsigned long long>(safedm.counters().monitored_cycles));

  std::printf("\ncase 2: diverse implementations (bsort || insertsort)\n");
  soc::MpSoc soc2{soc::SocConfig{}};
  monitor::SafeDm safedm2(config);
  soc2.add_observer(&safedm2);
  soc2.load_distinct(impl_b, impl_b2);
  soc2.run(50'000'000);
  safedm2.finalize();
  std::printf("  no-div cycles: %llu of %llu monitored\n",
              static_cast<unsigned long long>(safedm2.counters().nodiv_cycles),
              static_cast<unsigned long long>(safedm2.counters().monitored_cycles));
  std::printf("  note: different instruction streams — a staggering-enforcement scheme\n"
              "  (SafeDE) could not even define staggering here; SafeDM just monitors\n"
              "  the real state of the cores (Section III-B4).\n");

  // In a deployment the two implementations would process the same input
  // and a functional cross-check of their answers remains the
  // error-detection mechanism; SafeDM's role is to vouch that a
  // common-cause fault would have produced *different* errors. (These demo
  // kernels ship their own canned inputs, so their checksums are shown for
  // reference, not compared.)
  std::printf("\nresult checksums (reference): core0=0x%llx core1=0x%llx\n",
              static_cast<unsigned long long>(soc2.memory().load(soc2.config().data_base0, 8)),
              static_cast<unsigned long long>(soc2.memory().load(soc2.config().data_base1, 8)));
  return 0;
}
