// RTOS polling mode (paper Section III-B3, option 3): no interrupts — the
// operating system reads SafeDM's APB register file whenever it wants and
// decides what to do with the counts. This example drives the monitor
// purely through its bus interface, the way real RTOS driver code would.
#include <cstdio>

#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;
using monitor::reg::kCtrl;
using monitor::reg::kDsMatchLo;
using monitor::reg::kGeometry;
using monitor::reg::kHistData;
using monitor::reg::kHistSelect;
using monitor::reg::kIgnore1;
using monitor::reg::kInstDiff;
using monitor::reg::kIsMatchLo;
using monitor::reg::kMonitoredLo;
using monitor::reg::kNodivHi;
using monitor::reg::kNodivLo;
using monitor::reg::kStatus;
using monitor::reg::kZeroStagLo;

namespace {
constexpr u64 kSafeDmBase = 0x80000000;

u64 read64(bus::ApbBus& apb, u32 lo_offset) {
  const u32 lo = apb.read(kSafeDmBase + lo_offset);
  const u32 hi = apb.read(kSafeDmBase + lo_offset + 4);
  return (static_cast<u64>(hi) << 32) | lo;
}
}  // namespace

int main() {
  soc::MpSoc soc{soc::SocConfig{}};
  monitor::SafeDm safedm{monitor::SafeDmConfig{}};  // powered up disabled
  soc.add_observer(&safedm);
  soc.apb().map(kSafeDmBase, 0x100, &safedm, "safedm");
  bus::ApbBus& apb = soc.apb();

  // --- RTOS boot: probe the device and program it over APB. -------------
  const u32 geometry = apb.read(kSafeDmBase + kGeometry);
  std::printf("SafeDM geometry: n=%u cycles, m=%u ports, o=%u stages, p=%u wide\n",
              geometry & 0xFF, (geometry >> 8) & 0xFF, (geometry >> 16) & 0xFF,
              (geometry >> 24) & 0xFF);

  const unsigned stagger = 100;
  soc.load_redundant(workloads::build("fft", 1), stagger, 1);
  apb.write(kSafeDmBase + kIgnore1, stagger);  // discount the nop prelude
  // CTRL: enable, poll-only reporting.
  apb.write(kSafeDmBase + kCtrl,
            1u | (static_cast<u32>(monitor::ReportMode::kPollOnly) << 1));

  // --- Periodic polling loop: the RTOS tick reads the counters. ----------
  std::printf("\n%-10s %12s %10s %10s %8s %8s\n", "cycle", "monitored", "no-div",
              "zero-stag", "diff", "status");
  u64 next_poll = 2000;
  while (!soc.all_halted() && soc.cycle() < 50'000'000) {
    soc.step();
    if (soc.cycle() == next_poll) {
      next_poll += 2000;
      std::printf("%-10llu %12llu %10llu %10llu %8d %8s\n",
                  static_cast<unsigned long long>(soc.cycle()),
                  static_cast<unsigned long long>(read64(apb, kMonitoredLo)),
                  static_cast<unsigned long long>(read64(apb, kNodivLo)),
                  static_cast<unsigned long long>(read64(apb, kZeroStagLo)),
                  static_cast<i32>(apb.read(kSafeDmBase + kInstDiff)),
                  (apb.read(kSafeDmBase + kStatus) & 1) ? "NO-DIV" : "ok");
    }
  }
  safedm.finalize();

  // --- Shutdown: final report incl. the History module readout. ----------
  std::printf("\nfinal: no-div=%llu ds-match=%llu is-match=%llu of %llu monitored cycles\n",
              static_cast<unsigned long long>(read64(apb, kNodivLo)),
              static_cast<unsigned long long>(read64(apb, kDsMatchLo)),
              static_cast<unsigned long long>(read64(apb, kIsMatchLo)),
              static_cast<unsigned long long>(read64(apb, kMonitoredLo)));
  std::printf("no-div episode histogram (via HIST_SELECT/HIST_DATA):\n");
  for (u32 bin = 0; bin < 17; ++bin) {
    apb.write(kSafeDmBase + kHistSelect, bin);  // histogram 0 = no-div
    const u32 count = apb.read(kSafeDmBase + kHistData);
    if (count != 0) std::printf("  bin %2u (episodes <= 2^%u cycles): %u\n", bin, bin, count);
  }
  std::printf("done.\n");
  return 0;
}
