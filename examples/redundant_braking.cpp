// ASIL-D safety-concept demo (paper Section III-A): a braking-style task
// runs redundantly every period; SafeDM raises an interrupt when diversity
// is lost, and the "RTOS" applies the paper's corrective action — drop the
// job (the previous command stays in force) and re-launch the next one
// with staggering. Safety holds as long as drops are not consecutive
// within the Fault Tolerant Time Interval (FTTI).
#include <cstdio>

#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;

namespace {

struct JobResult {
  bool diversity_lost = false;
  bool outputs_match = false;
  u64 cycles = 0;
};

JobResult run_job(const assembler::Program& program, unsigned stagger, bool force_shared_data) {
  soc::SocConfig soc_config;
  soc_config.shared_data = force_shared_data;  // fault model: a mis-set-up job
  soc::MpSoc soc(soc_config);

  monitor::SafeDmConfig dm_config;
  dm_config.report = monitor::ReportMode::kInterruptThreshold;
  dm_config.interrupt_threshold = 32;  // tolerate brief matches
  dm_config.start_enabled = true;
  monitor::SafeDm safedm(dm_config);
  soc.add_observer(&safedm);

  bool interrupted = false;
  safedm.set_interrupt_handler([&](u64 cycle) {
    std::printf("    [IRQ] diversity lost for %u cycles at cycle %llu\n",
                dm_config.interrupt_threshold, static_cast<unsigned long long>(cycle));
    interrupted = true;
  });

  soc.load_redundant(program, stagger, 1);
  safedm.set_prelude_ignore(0, soc.prelude_commits(0));
  safedm.set_prelude_ignore(1, soc.prelude_commits(1));
  const u64 cycles = soc.run(50'000'000);
  safedm.finalize();

  JobResult result;
  result.diversity_lost = interrupted;
  result.outputs_match = soc.memory().load(soc.config().data_base0, 8) ==
                         soc.memory().load(soc.config().data_base1, 8);
  result.cycles = cycles;
  return result;
}

}  // namespace

int main() {
  // The "braking controller" job: a filter + decision kernel.
  const assembler::Program job = workloads::build("iir", 1);

  std::printf("ASIL-D redundant braking task — 8 periodic jobs, FTTI = 2 periods\n\n");
  unsigned consecutive_drops = 0;
  unsigned total_drops = 0;
  unsigned stagger = 0;
  for (unsigned period = 0; period < 8; ++period) {
    // Fault model: in periods 2 and 3 the RTOS mis-launches the redundant
    // pair into a *shared* address space (e.g. fork failed and both run in
    // one process image) — natural diversity collapses.
    const bool misconfigured = (period == 2 || period == 3) && stagger == 0;
    std::printf("period %u: launching redundant job (stagger=%u%s)\n", period, stagger,
                misconfigured ? ", MISCONFIGURED: shared address space" : "");
    const JobResult result = run_job(job, stagger, misconfigured);
    if (result.diversity_lost) {
      ++total_drops;
      ++consecutive_drops;
      std::printf("    -> job DROPPED (previous braking command stays in force)\n");
      std::printf("    -> corrective action: next launch with 1000-nop staggering\n");
      stagger = 1000;
      if (consecutive_drops >= 2) {
        std::printf("    !! FTTI exhausted: escalate to safe state\n");
        return 1;
      }
    } else {
      std::printf("    -> job OK (outputs %s, %llu cycles)\n",
                  result.outputs_match ? "match" : "MISMATCH",
                  static_cast<unsigned long long>(result.cycles));
      consecutive_drops = 0;
      stagger = 0;  // staggering not needed while diversity holds
    }
  }
  std::printf("\ncompleted: %u of 8 jobs dropped, FTTI never exhausted — system stayed safe\n",
              total_drops);
  return 0;
}
