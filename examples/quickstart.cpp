// Quickstart: attach SafeDM to the dual-core MPSoC, run a benchmark
// redundantly on both cores, and read out the diversity verdict.
//
// Build & run:   ./build/examples/quickstart [benchmark] [stagger_nops]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;

int main(int argc, char** argv) {
  const std::string benchmark = argc > 1 ? argv[1] : "quicksort";
  const unsigned stagger = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 0;

  // 1. The platform: two NOEL-V-style cores, shared L2 behind an AHB bus.
  soc::MpSoc soc{soc::SocConfig{}};

  // 2. The monitor: default geometry (n=8 cycles of register-port history,
  //    m=4 monitored ports, per-stage instruction signature).
  monitor::SafeDmConfig config;
  config.start_enabled = true;
  monitor::SafeDm safedm(config);
  soc.add_observer(&safedm);
  soc.apb().map(0x80000000, 0x100, &safedm, "safedm");

  // 3. Load the same program on both cores (distinct data segments), with
  //    an optional nop prelude delaying core 1.
  const assembler::Program program = workloads::build(benchmark, 1);
  soc.load_redundant(program, stagger, /*delayed_core=*/1);
  safedm.set_prelude_ignore(0, soc.prelude_commits(0));
  safedm.set_prelude_ignore(1, soc.prelude_commits(1));

  // 4. Run to completion.
  const u64 cycles = soc.run(50'000'000);
  safedm.finalize();

  // 5. Results.
  const auto& c = safedm.counters();
  std::printf("benchmark            : %s (stagger %u nops)\n", benchmark.c_str(), stagger);
  std::printf("cycles               : %llu\n", static_cast<unsigned long long>(cycles));
  std::printf("committed (c0 / c1)  : %llu / %llu\n",
              static_cast<unsigned long long>(soc.core(0).stats().committed),
              static_cast<unsigned long long>(soc.core(1).stats().committed));
  std::printf("monitored cycles     : %llu\n",
              static_cast<unsigned long long>(c.monitored_cycles));
  std::printf("zero-staggering      : %llu cycles\n",
              static_cast<unsigned long long>(c.zero_stag_cycles));
  std::printf("lack of diversity    : %llu cycles (%.5f%%)\n",
              static_cast<unsigned long long>(c.nodiv_cycles),
              c.monitored_cycles ? 100.0 * c.nodiv_cycles / c.monitored_cycles : 0.0);
  std::printf("results match        : %s\n",
              soc.memory().load(soc.config().data_base0, 8) ==
                      soc.memory().load(soc.config().data_base1, 8)
                  ? "yes"
                  : "NO");
  if (c.nodiv_cycles > 0) {
    std::printf("\nno-diversity episode lengths:\n%s",
                safedm.nodiv_history().to_string().c_str());
  }
  return 0;
}
