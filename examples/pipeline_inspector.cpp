// Pipeline inspector: the Modelsim-workflow replacement (paper Section
// V-A/V-C: the authors "visually inspected the contents of the pipelines
// of the cores in multiple cases ... to validate that SafeDM behaved as
// specified"). Renders a cycle-by-cycle text trace of both pipelines
// around the cycles where SafeDM reports no diversity, and writes a VCD
// waveform of every monitored signal.
//
// Usage: pipeline_inspector [benchmark] [vcd_path]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/trace/pipeline_tracer.hpp"
#include "safedm/trace/vcd_writer.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;

int main(int argc, char** argv) {
  const std::string benchmark = argc > 1 ? argv[1] : "cubic";
  const std::string vcd_path = argc > 2 ? argv[2] : "safedm_trace.vcd";

  soc::MpSoc soc{soc::SocConfig{}};
  monitor::SafeDmConfig config;
  config.start_enabled = true;
  monitor::SafeDm dm(config);
  soc.add_observer(&dm);

  // Trace exactly the no-diversity cycles to stdout (the interesting ones)…
  trace::TracerConfig tracer_config;
  tracer_config.only_when_lacking_diversity = true;
  trace::PipelineTracer tracer(std::cout, tracer_config, &dm);
  soc.add_observer(&tracer);

  // …and everything to a VCD for waveform viewing.
  std::ofstream vcd_file(vcd_path);
  trace::VcdWriter vcd(vcd_file, &dm);
  soc.add_observer(&vcd);

  soc.load_redundant(workloads::build(benchmark, 1));
  soc.run(2'000'000);
  dm.finalize();

  std::printf("\nbenchmark %s: %llu no-diversity cycles traced above; full waveform\n"
              "(%llu value changes) written to %s\n",
              benchmark.c_str(),
              static_cast<unsigned long long>(dm.counters().nodiv_cycles),
              static_cast<unsigned long long>(vcd.changes_written()), vcd_path.c_str());
  std::printf("view with: gtkwave %s\n", vcd_path.c_str());
  return 0;
}
